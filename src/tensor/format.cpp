#include "tensor/format.hpp"

#include <algorithm>
#include <numeric>

namespace waco {

FormatDescriptor::FormatDescriptor(u32 order, std::array<u32, 3> dims,
                                   std::array<u32, 3> splits,
                                   std::vector<LevelSpec> levels)
    : order_(order), dims_(dims), splits_(splits), levels_(std::move(levels))
{
    validate();
}

void
FormatDescriptor::validate() const
{
    fatalIf(order_ < 1 || order_ > 3, "format order must be 1..3");
    std::array<int, 3> full_count = {0, 0, 0};
    std::array<int, 3> outer_count = {0, 0, 0};
    std::array<int, 3> inner_count = {0, 0, 0};
    for (const auto& ls : levels_) {
        fatalIf(ls.dim >= order_, "level references dimension out of range");
        switch (ls.part) {
          case LevelPart::Full: ++full_count[ls.dim]; break;
          case LevelPart::Outer: ++outer_count[ls.dim]; break;
          case LevelPart::Inner: ++inner_count[ls.dim]; break;
        }
    }
    for (u32 d = 0; d < order_; ++d) {
        fatalIf(dims_[d] == 0, "zero dimension size");
        fatalIf(splits_[d] == 0, "zero split size");
        if (splits_[d] == 1) {
            fatalIf(full_count[d] != 1 || outer_count[d] != 0 ||
                        inner_count[d] != 0,
                    "unsplit dimension must appear exactly once as Full");
        } else {
            fatalIf(full_count[d] != 0 || outer_count[d] != 1 ||
                        inner_count[d] != 1,
                    "split dimension must appear exactly once as Outer and Inner");
        }
    }
}

u32
FormatDescriptor::levelExtent(u32 l) const
{
    const LevelSpec& ls = levels_[l];
    switch (ls.part) {
      case LevelPart::Full:
        return dims_[ls.dim];
      case LevelPart::Outer:
        return ceilDiv(dims_[ls.dim], splits_[ls.dim]);
      case LevelPart::Inner:
        return splits_[ls.dim];
    }
    panic("unreachable level part");
}

u32
FormatDescriptor::levelCoord(u32 l, const std::array<u32, 3>& coords) const
{
    const LevelSpec& ls = levels_[l];
    u32 c = coords[ls.dim];
    switch (ls.part) {
      case LevelPart::Full:
        return c;
      case LevelPart::Outer:
        return c / splits_[ls.dim];
      case LevelPart::Inner:
        return c % splits_[ls.dim];
    }
    panic("unreachable level part");
}

std::string
FormatDescriptor::name() const
{
    std::string fmts, order;
    for (u32 l = 0; l < numLevels(); ++l) {
        const LevelSpec& ls = levels_[l];
        fmts += (ls.fmt == LevelFormat::Uncompressed) ? 'U' : 'C';
        if (l)
            order += ',';
        order += 'd' + std::to_string(ls.dim);
        if (ls.part == LevelPart::Outer)
            order += 'o';
        else if (ls.part == LevelPart::Inner)
            order += 'i';
    }
    return fmts + "(" + order + ")";
}

bool
FormatDescriptor::operator==(const FormatDescriptor& o) const
{
    if (order_ != o.order_ || dims_ != o.dims_ || splits_ != o.splits_ ||
        levels_.size() != o.levels_.size())
        return false;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
        if (levels_[l].dim != o.levels_[l].dim ||
            levels_[l].part != o.levels_[l].part ||
            levels_[l].fmt != o.levels_[l].fmt)
            return false;
    }
    return true;
}

FormatDescriptor
FormatDescriptor::csr(u32 rows, u32 cols)
{
    return FormatDescriptor(
        2, {rows, cols, 0}, {1, 1, 1},
        {{0, LevelPart::Full, LevelFormat::Uncompressed},
         {1, LevelPart::Full, LevelFormat::Compressed}});
}

FormatDescriptor
FormatDescriptor::csc(u32 rows, u32 cols)
{
    return FormatDescriptor(
        2, {rows, cols, 0}, {1, 1, 1},
        {{1, LevelPart::Full, LevelFormat::Uncompressed},
         {0, LevelPart::Full, LevelFormat::Compressed}});
}

FormatDescriptor
FormatDescriptor::coo2d(u32 rows, u32 cols)
{
    return FormatDescriptor(
        2, {rows, cols, 0}, {1, 1, 1},
        {{0, LevelPart::Full, LevelFormat::Compressed},
         {1, LevelPart::Full, LevelFormat::Compressed}});
}

FormatDescriptor
FormatDescriptor::dense2d(u32 rows, u32 cols)
{
    return FormatDescriptor(
        2, {rows, cols, 0}, {1, 1, 1},
        {{0, LevelPart::Full, LevelFormat::Uncompressed},
         {1, LevelPart::Full, LevelFormat::Uncompressed}});
}

FormatDescriptor
FormatDescriptor::bcsr(u32 rows, u32 cols, u32 br, u32 bc)
{
    return FormatDescriptor(
        2, {rows, cols, 0}, {br, bc, 1},
        {{0, LevelPart::Outer, LevelFormat::Uncompressed},
         {1, LevelPart::Outer, LevelFormat::Compressed},
         {0, LevelPart::Inner, LevelFormat::Uncompressed},
         {1, LevelPart::Inner, LevelFormat::Uncompressed}});
}

FormatDescriptor
FormatDescriptor::ucu(u32 rows, u32 cols, u32 bc)
{
    return FormatDescriptor(
        2, {rows, cols, 0}, {1, bc, 1},
        {{0, LevelPart::Full, LevelFormat::Uncompressed},
         {1, LevelPart::Outer, LevelFormat::Compressed},
         {1, LevelPart::Inner, LevelFormat::Uncompressed}});
}

FormatDescriptor
FormatDescriptor::uuc(u32 rows, u32 cols, u32 kc)
{
    return FormatDescriptor(
        2, {rows, cols, 0}, {1, kc, 1},
        {{1, LevelPart::Outer, LevelFormat::Uncompressed},
         {0, LevelPart::Full, LevelFormat::Uncompressed},
         {1, LevelPart::Inner, LevelFormat::Compressed}});
}

FormatDescriptor
FormatDescriptor::csf3d(u32 di, u32 dk, u32 dl)
{
    return FormatDescriptor(
        3, {di, dk, dl}, {1, 1, 1},
        {{0, LevelPart::Full, LevelFormat::Compressed},
         {1, LevelPart::Full, LevelFormat::Compressed},
         {2, LevelPart::Full, LevelFormat::Compressed}});
}

namespace {

/** Per-entry byte cost of TACO's int32 pos/crd and float val arrays. */
constexpr u64 kEntryBytes = 4;

} // namespace

HierSparseTensor
HierSparseTensor::build(const FormatDescriptor& desc, const SparseMatrix& m,
                        u64 max_bytes)
{
    fatalIf(desc.order() != 2, "2D build requires an order-2 descriptor");
    fatalIf(desc.dims()[0] != m.rows() || desc.dims()[1] != m.cols(),
            "descriptor dims do not match matrix shape");
    std::vector<std::array<u32, 3>> coords(m.nnz());
    for (u64 n = 0; n < m.nnz(); ++n)
        coords[n] = {m.rowIndices()[n], m.colIndices()[n], 0};
    return buildImpl(desc, coords, m.values(), max_bytes);
}

HierSparseTensor
HierSparseTensor::build(const FormatDescriptor& desc, const Sparse3Tensor& t,
                        u64 max_bytes)
{
    fatalIf(desc.order() != 3, "3D build requires an order-3 descriptor");
    fatalIf(desc.dims()[0] != t.dimI() || desc.dims()[1] != t.dimK() ||
                desc.dims()[2] != t.dimL(),
            "descriptor dims do not match tensor shape");
    std::vector<std::array<u32, 3>> coords(t.nnz());
    for (u64 n = 0; n < t.nnz(); ++n)
        coords[n] = {t.iIndices()[n], t.kIndices()[n], t.lIndices()[n]};
    return buildImpl(desc, coords, t.values(), max_bytes);
}

HierSparseTensor
HierSparseTensor::buildImpl(const FormatDescriptor& desc,
                            const std::vector<std::array<u32, 3>>& coords,
                            const std::vector<float>& vals, u64 max_bytes)
{
    const u32 num_levels = desc.numLevels();
    const u64 nnz = coords.size();
    const u64 max_positions = max_bytes / kEntryBytes;

    // Per-nonzero level coordinates.
    std::vector<std::vector<u32>> lc(num_levels, std::vector<u32>(nnz));
    for (u32 l = 0; l < num_levels; ++l)
        for (u64 n = 0; n < nnz; ++n)
            lc[l][n] = desc.levelCoord(l, coords[n]);

    // Sort nonzeros lexicographically in level order. Level coordinates
    // fit in 18 bits each (dims <= 131072), so up to 7 levels pack into a
    // single 126-bit key — far faster than a per-level comparator.
    panicIf(num_levels > 7, "too many levels to pack a sort key");
    using Key = unsigned __int128;
    std::vector<std::pair<Key, u32>> keyed(nnz);
    for (u64 n = 0; n < nnz; ++n) {
        Key k = 0;
        for (u32 l = 0; l < num_levels; ++l)
            k = (k << 18) | lc[l][n];
        keyed[n] = {k, static_cast<u32>(n)};
    }
    std::sort(keyed.begin(), keyed.end());
    std::vector<u64> order(nnz);
    for (u64 n = 0; n < nnz; ++n)
        order[n] = keyed[n].second;

    HierSparseTensor out;
    out.desc_ = desc;
    out.levels_.resize(num_levels);
    out.bytes_ = 0;

    // Current position of each nonzero; refined level by level.
    std::vector<u64> position(nnz, 0);
    u64 parent_count = 1;

    for (u32 l = 0; l < num_levels; ++l) {
        BuiltLevel& bl = out.levels_[l];
        bl.fmt = desc.levels()[l].fmt;
        bl.extent = desc.levelExtent(l);
        if (bl.fmt == LevelFormat::Uncompressed) {
            bl.numPositions = parent_count * bl.extent;
            if (bl.numPositions > max_positions ||
                bl.numPositions / bl.extent != parent_count) {
                throw FormatTooLarge("uncompressed level exceeds budget in " +
                                     desc.name());
            }
            for (u64 idx = 0; idx < nnz; ++idx) {
                u64 n = order[idx];
                position[n] = position[n] * bl.extent + lc[l][n];
            }
            out.bytes_ += kEntryBytes; // stores only the dimension
        } else {
            if (parent_count + 1 > max_positions) {
                throw FormatTooLarge("compressed pos array exceeds budget in " +
                                     desc.name());
            }
            bl.pos.assign(parent_count + 1, 0);
            bl.crd.clear();
            bl.crd.reserve(nnz);
            u64 prev_parent = ~0ull;
            u32 prev_coord = 0;
            std::vector<u64> new_position(nnz);
            for (u64 idx = 0; idx < nnz; ++idx) {
                u64 n = order[idx];
                u64 parent = position[n];
                u32 coord = lc[l][n];
                if (parent != prev_parent || coord != prev_coord ||
                    bl.crd.empty()) {
                    bl.crd.push_back(coord);
                    ++bl.pos[parent + 1];
                    prev_parent = parent;
                    prev_coord = coord;
                }
                new_position[n] = bl.crd.size() - 1;
            }
            for (u64 p = 0; p < parent_count; ++p)
                bl.pos[p + 1] += bl.pos[p];
            position = std::move(new_position);
            bl.numPositions = bl.crd.size();
            out.bytes_ += kEntryBytes * (bl.pos.size() + bl.crd.size());
        }
        parent_count = bl.numPositions;
    }

    if (parent_count > max_positions)
        throw FormatTooLarge("value array exceeds budget in " + desc.name());
    out.vals_.assign(parent_count, 0.0f);
    for (u64 n = 0; n < nnz; ++n)
        out.vals_[position[n]] += vals[n];
    out.bytes_ += kEntryBytes * parent_count;
    return out;
}

bool
HierSparseTensor::reconstruct(const std::vector<u32>& level_coords,
                              std::array<u32, 3>& coords) const
{
    coords = {0, 0, 0};
    for (u32 l = 0; l < desc_.numLevels(); ++l) {
        const LevelSpec& ls = desc_.levels()[l];
        switch (ls.part) {
          case LevelPart::Full:
            coords[ls.dim] = level_coords[l];
            break;
          case LevelPart::Outer:
            coords[ls.dim] += level_coords[l] * desc_.splits()[ls.dim];
            break;
          case LevelPart::Inner:
            coords[ls.dim] += level_coords[l];
            break;
        }
    }
    for (u32 d = 0; d < desc_.order(); ++d) {
        if (coords[d] >= desc_.dims()[d])
            return false;
    }
    return true;
}

void
HierSparseTensor::forEachNonzero(
    const std::function<void(const std::array<u32, 3>&, float)>& fn) const
{
    forEachStored([&](const std::array<u32, 3>& coords, float v, bool ok) {
        if (ok && v != 0.0f)
            fn(coords, v);
    });
}

SparseMatrix
HierSparseTensor::toSparseMatrix() const
{
    panicIf(desc_.order() != 2, "toSparseMatrix on non-2D tensor");
    std::vector<Triplet> t;
    forEachNonzero([&](const std::array<u32, 3>& coords, float v) {
        t.push_back({coords[0], coords[1], v});
    });
    return SparseMatrix(desc_.dims()[0], desc_.dims()[1], std::move(t));
}

} // namespace waco
