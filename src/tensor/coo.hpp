/**
 * @file
 * Canonical coordinate (COO) sparse matrix / 3-tensor types.
 *
 * Every other representation in WACO (CSR, the TACO-style coordinate
 * hierarchy, ASpT tiles, ...) is built from these canonical forms. The COO
 * arrays are always kept sorted lexicographically and duplicate-free, which
 * the format builders rely on.
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace waco {

/** One nonzero of a sparse matrix. */
struct Triplet
{
    u32 row;
    u32 col;
    float val;
};

/**
 * Sorted, duplicate-free COO sparse matrix (single precision, as in the
 * paper's evaluation).
 */
class SparseMatrix
{
  public:
    SparseMatrix() = default;

    /** Build from (possibly unsorted / duplicated) triplets; duplicates are summed. */
    SparseMatrix(u32 rows, u32 cols, std::vector<Triplet> triplets,
                 std::string name = "");

    u32 rows() const { return rows_; }
    u32 cols() const { return cols_; }
    u64 nnz() const { return row_.size(); }
    const std::string& name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Fraction of entries that are nonzero. */
    double density() const;

    const std::vector<u32>& rowIndices() const { return row_; }
    const std::vector<u32>& colIndices() const { return col_; }
    const std::vector<float>& values() const { return val_; }
    std::vector<float>& values() { return val_; }

    /** Number of nonzeros in each row. */
    std::vector<u32> rowNnz() const;

    /** Number of nonzeros in each column. */
    std::vector<u32> colNnz() const;

    /** Transposed copy (sorted canonical form). */
    SparseMatrix transposed() const;

    /**
     * Pattern-preserving resize used for dataset augmentation (Section 4.1.3
     * of the paper resizes SuiteSparse matrices): coordinates are rescaled
     * into the new shape and re-deduplicated.
     */
    SparseMatrix resized(u32 new_rows, u32 new_cols) const;

    /** Exact structural + value equality. */
    bool operator==(const SparseMatrix& o) const;

  private:
    u32 rows_ = 0;
    u32 cols_ = 0;
    std::vector<u32> row_;
    std::vector<u32> col_;
    std::vector<float> val_;
    std::string name_;
};

/** One nonzero of a 3D sparse tensor. */
struct Quad
{
    u32 i;
    u32 k;
    u32 l;
    float val;
};

/** Sorted, duplicate-free COO 3D sparse tensor (for MTTKRP). */
class Sparse3Tensor
{
  public:
    Sparse3Tensor() = default;

    /** Build from (possibly unsorted / duplicated) entries; duplicates are summed. */
    Sparse3Tensor(u32 di, u32 dk, u32 dl, std::vector<Quad> entries,
                  std::string name = "");

    u32 dimI() const { return dims_[0]; }
    u32 dimK() const { return dims_[1]; }
    u32 dimL() const { return dims_[2]; }
    const std::array<u32, 3>& dims() const { return dims_; }
    u64 nnz() const { return i_.size(); }
    const std::string& name() const { return name_; }

    const std::vector<u32>& iIndices() const { return i_; }
    const std::vector<u32>& kIndices() const { return k_; }
    const std::vector<u32>& lIndices() const { return l_; }
    const std::vector<float>& values() const { return val_; }

  private:
    std::array<u32, 3> dims_ = {0, 0, 0};
    std::vector<u32> i_;
    std::vector<u32> k_;
    std::vector<u32> l_;
    std::vector<float> val_;
    std::string name_;
};

} // namespace waco
