/**
 * @file
 * Dense vector / matrix operands for the four kernels. Row- or column-major
 * layout is explicit because the paper's SuperSchedule includes the level
 * order of dense operands (e.g. SDDMM fixes B row-major and C column-major).
 */
#pragma once

#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace waco {

/** Storage order of a dense matrix. */
enum class Layout { RowMajor, ColMajor };

/** Dense single-precision vector. */
class DenseVector
{
  public:
    DenseVector() = default;
    explicit DenseVector(u64 n, float fill = 0.0f) : data_(n, fill) {}

    u64 size() const { return data_.size(); }
    float& operator[](u64 i) { return data_[i]; }
    float operator[](u64 i) const { return data_[i]; }
    const std::vector<float>& data() const { return data_; }
    std::vector<float>& data() { return data_; }

    /** Fill with uniform random values in [-1, 1). */
    void
    randomize(Rng& rng)
    {
        for (auto& x : data_)
            x = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    }

  private:
    std::vector<float> data_;
};

/** Dense single-precision matrix with explicit layout. */
class DenseMatrix
{
  public:
    DenseMatrix() = default;
    DenseMatrix(u64 rows, u64 cols, Layout layout = Layout::RowMajor,
                float fill = 0.0f)
        : rows_(rows), cols_(cols), layout_(layout),
          data_(rows * cols, fill)
    {}

    u64 rows() const { return rows_; }
    u64 cols() const { return cols_; }
    Layout layout() const { return layout_; }

    /** Linear offset of element (r, c) under the current layout. */
    u64
    offset(u64 r, u64 c) const
    {
        return layout_ == Layout::RowMajor ? r * cols_ + c : c * rows_ + r;
    }

    float& at(u64 r, u64 c) { return data_[offset(r, c)]; }
    float at(u64 r, u64 c) const { return data_[offset(r, c)]; }

    const std::vector<float>& data() const { return data_; }
    std::vector<float>& data() { return data_; }

    /** Fill with uniform random values in [-1, 1). */
    void
    randomize(Rng& rng)
    {
        for (auto& x : data_)
            x = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    }

    /** Set every element to @p v. */
    void
    fill(float v)
    {
        std::fill(data_.begin(), data_.end(), v);
    }

  private:
    u64 rows_ = 0;
    u64 cols_ = 0;
    Layout layout_ = Layout::RowMajor;
    std::vector<float> data_;
};

} // namespace waco
