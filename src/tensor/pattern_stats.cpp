#include "tensor/pattern_stats.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "util/stats.hpp"

namespace waco {

namespace {

constexpr std::array<u32, 5> kBlockSizes = {2, 4, 8, 16, 32};

/** 64-bit key for a (block-row, block-col) pair. */
u64
blockKey(u32 br, u32 bc)
{
    return (static_cast<u64>(br) << 32) | bc;
}

} // namespace

double
PatternStats::fillForBlock(u32 b) const
{
    const BlockFill* best = &blockFills[0];
    for (const auto& bf : blockFills) {
        if (bf.blockSize <= b)
            best = &bf;
    }
    return best->fill;
}

u64
PatternStats::occupiedBlocksFor(u32 b) const
{
    const BlockFill* best = &blockFills[0];
    for (const auto& bf : blockFills) {
        if (bf.blockSize <= b)
            best = &bf;
    }
    return best->occupiedBlocks;
}

std::vector<float>
PatternStats::toFeatureVector() const
{
    std::vector<float> f;
    f.push_back(std::log1p(static_cast<float>(rows)));
    f.push_back(std::log1p(static_cast<float>(cols)));
    f.push_back(std::log1p(static_cast<float>(nnz)));
    f.push_back(static_cast<float>(density));
    f.push_back(static_cast<float>(std::log1p(nnzPerRowMean)));
    f.push_back(static_cast<float>(std::log1p(nnzPerRowStd)));
    f.push_back(std::log1p(static_cast<float>(nnzPerRowMax)));
    f.push_back(static_cast<float>(rowSkew));
    f.push_back(static_cast<float>(emptyRowFrac));
    f.push_back(static_cast<float>(std::log1p(nnzPerColMean)));
    f.push_back(static_cast<float>(std::log1p(nnzPerColStd)));
    f.push_back(static_cast<float>(normalizedBandwidth));
    f.push_back(static_cast<float>(rowNeighborFrac));
    f.push_back(static_cast<float>(colNeighborFrac));
    f.push_back(static_cast<float>(symmetryFrac));
    for (const auto& bf : blockFills)
        f.push_back(static_cast<float>(bf.fill));
    return f;
}

std::vector<std::string>
PatternStats::featureNames()
{
    std::vector<std::string> names = {
        "log_rows", "log_cols", "log_nnz", "density",
        "log_nnz_per_row_mean", "log_nnz_per_row_std", "log_nnz_per_row_max",
        "row_skew", "empty_row_frac", "log_nnz_per_col_mean",
        "log_nnz_per_col_std", "normalized_bandwidth", "row_neighbor_frac",
        "col_neighbor_frac", "symmetry_frac"};
    for (u32 b : kBlockSizes)
        names.push_back("block_fill_" + std::to_string(b));
    return names;
}

PatternStats
computePatternStats(const SparseMatrix& m)
{
    PatternStats s;
    s.rows = m.rows();
    s.cols = m.cols();
    s.nnz = m.nnz();
    s.density = m.density();

    auto row_counts = m.rowNnz();
    auto col_counts = m.colNnz();
    std::vector<double> rc(row_counts.begin(), row_counts.end());
    std::vector<double> cc(col_counts.begin(), col_counts.end());
    s.nnzPerRowMean = mean(rc);
    s.nnzPerRowStd = std::sqrt(variance(rc));
    s.nnzPerRowMax = row_counts.empty()
        ? 0 : *std::max_element(row_counts.begin(), row_counts.end());
    s.rowSkew = gini(rc);
    u64 empty = 0;
    for (u32 c : row_counts)
        empty += (c == 0);
    s.emptyRowFrac = s.rows ? static_cast<double>(empty) / s.rows : 0.0;
    s.nnzPerColMean = mean(cc);
    s.nnzPerColStd = std::sqrt(variance(cc));

    const auto& ri = m.rowIndices();
    const auto& ci = m.colIndices();

    // Nonzero-coordinate hash set for adjacency / symmetry probes.
    std::unordered_set<u64> nz_set;
    nz_set.reserve(m.nnz() * 2);
    for (u64 n = 0; n < m.nnz(); ++n)
        nz_set.insert(blockKey(ri[n], ci[n]));

    double band = 0.0;
    u64 row_neighbors = 0, col_neighbors = 0, sym = 0;
    for (u64 n = 0; n < m.nnz(); ++n) {
        band += std::abs(static_cast<double>(ri[n]) - ci[n]);
        if (nz_set.count(blockKey(ri[n], ci[n] + 1)))
            ++row_neighbors;
        if (nz_set.count(blockKey(ri[n] + 1, ci[n])))
            ++col_neighbors;
        if (ri[n] < m.cols() && ci[n] < m.rows() &&
            nz_set.count(blockKey(ci[n], ri[n])))
            ++sym;
    }
    double denom = std::max<double>(1.0, static_cast<double>(m.nnz()));
    s.normalizedBandwidth =
        band / denom / std::max<double>(1.0, std::max(m.rows(), m.cols()));
    s.rowNeighborFrac = static_cast<double>(row_neighbors) / denom;
    s.colNeighborFrac = static_cast<double>(col_neighbors) / denom;
    s.symmetryFrac = static_cast<double>(sym) / denom;

    for (std::size_t bi = 0; bi < kBlockSizes.size(); ++bi) {
        u32 b = kBlockSizes[bi];
        std::unordered_set<u64> blocks;
        blocks.reserve(m.nnz());
        for (u64 n = 0; n < m.nnz(); ++n)
            blocks.insert(blockKey(ri[n] / b, ci[n] / b));
        BlockFill bf;
        bf.blockSize = b;
        bf.occupiedBlocks = blocks.size();
        bf.fill = blocks.empty()
            ? 0.0
            : static_cast<double>(m.nnz()) /
                  (static_cast<double>(blocks.size()) * b * b);
        s.blockFills[bi] = bf;
    }
    return s;
}

u64
patternFingerprint(const PatternStats& s)
{
    // FNV-1a over the exact integer geometry plus the bit patterns of every
    // statistic. Doubles are hashed via their representations, so the
    // fingerprint is exactly as deterministic as computePatternStats.
    u64 h = 0xcbf29ce484222325ull;
    auto mix_bytes = [&h](const void* p, std::size_t n) {
        const auto* bytes = static_cast<const unsigned char*>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= bytes[i];
            h *= 0x100000001b3ull;
        }
    };
    auto mix_u64 = [&](u64 v) { mix_bytes(&v, sizeof v); };
    auto mix_f64 = [&](double v) { mix_bytes(&v, sizeof v); };

    mix_u64(s.rows);
    mix_u64(s.cols);
    mix_u64(s.nnz);
    mix_f64(s.density);
    mix_f64(s.nnzPerRowMean);
    mix_f64(s.nnzPerRowStd);
    mix_u64(s.nnzPerRowMax);
    mix_f64(s.rowSkew);
    mix_f64(s.emptyRowFrac);
    mix_f64(s.nnzPerColMean);
    mix_f64(s.nnzPerColStd);
    mix_f64(s.normalizedBandwidth);
    mix_f64(s.rowNeighborFrac);
    mix_f64(s.colNeighborFrac);
    mix_f64(s.symmetryFrac);
    for (const auto& bf : s.blockFills) {
        mix_u64(bf.blockSize);
        mix_u64(bf.occupiedBlocks);
        mix_f64(bf.fill);
    }
    return h;
}

} // namespace waco
