/**
 * @file
 * MatrixMarket coordinate-format I/O so users can run WACO on their own
 * SuiteSparse downloads. Supports the "matrix coordinate
 * real|integer|pattern general|symmetric" subset that covers SuiteSparse.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/coo.hpp"

namespace waco {

/** Parse a MatrixMarket stream. @throws FatalError on malformed input. */
SparseMatrix readMatrixMarket(std::istream& in, const std::string& name = "");

/** Parse a MatrixMarket file. */
SparseMatrix readMatrixMarketFile(const std::string& path);

/** Write a matrix in "matrix coordinate real general" form. */
void writeMatrixMarket(const SparseMatrix& m, std::ostream& out);

/** Write to a file. */
void writeMatrixMarketFile(const SparseMatrix& m, const std::string& path);

} // namespace waco
