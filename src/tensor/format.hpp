/**
 * @file
 * TACO-style format abstraction (Chou et al. [12], as used by WACO).
 *
 * A sparse tensor is viewed as a coordinate hierarchy: each tensor dimension
 * may be split once into an outer and an inner level (the paper limits
 * SuperSchedule to one split per dimension), the resulting levels are ordered
 * by a permutation, and each level is stored in either the Uncompressed (U)
 * or Compressed (C) level format. CSR is UC over (i,k); BCSR is UCUU over
 * (i1,k1,i0,k0); CSF is CCC over (i,k,l); and so on.
 */
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "tensor/coo.hpp"
#include "util/common.hpp"

namespace waco {

/** Physical storage of one coordinate-hierarchy level. */
enum class LevelFormat : unsigned char { Uncompressed, Compressed };

/**
 * Level capabilities in the sense of the Chou et al. abstraction: what a
 * kernel may do to a level depends only on its format. The static
 * verifier (src/analysis) checks schedules against these.
 */

/** Coordinate lookup at a known parent position: direct offset for U,
 *  binary search over crd for C (legal but O(log nnz) per probe). */
constexpr bool
levelSupportsLocate(LevelFormat f)
{
    return f == LevelFormat::Uncompressed || f == LevelFormat::Compressed;
}

/** O(log) locate — only U levels resolve a coordinate without a search. */
constexpr bool
levelSupportsDirectLocate(LevelFormat f)
{
    return f == LevelFormat::Uncompressed;
}

/** Writing at an arbitrary coordinate not already present. C levels are
 *  append-only (pos/crd arrays), so only U levels qualify. */
constexpr bool
levelSupportsRandomInsert(LevelFormat f)
{
    return f == LevelFormat::Uncompressed;
}

/** Which part of a (possibly split) dimension a level represents. */
enum class LevelPart : unsigned char { Full, Outer, Inner };

/** One level of the coordinate hierarchy. */
struct LevelSpec
{
    u32 dim;           ///< Tensor dimension this level indexes (0-based).
    LevelPart part;    ///< Full (unsplit), Outer (coord / split) or Inner (coord % split).
    LevelFormat fmt;   ///< U or C.
};

/**
 * Complete description of a format: per-dimension split sizes plus the
 * ordered, formatted levels.
 */
class FormatDescriptor
{
  public:
    FormatDescriptor() = default;

    /**
     * @param order tensor order (2 or 3)
     * @param dims dimension sizes
     * @param splits per-dimension split size; 1 means unsplit
     * @param levels ordered level specs (validated)
     */
    FormatDescriptor(u32 order, std::array<u32, 3> dims,
                     std::array<u32, 3> splits, std::vector<LevelSpec> levels);

    u32 order() const { return order_; }
    const std::array<u32, 3>& dims() const { return dims_; }
    const std::array<u32, 3>& splits() const { return splits_; }
    const std::vector<LevelSpec>& levels() const { return levels_; }
    u32 numLevels() const { return static_cast<u32>(levels_.size()); }

    /** Iteration extent of level @p l (outer: ceil(dim/split); inner: split). */
    u32 levelExtent(u32 l) const;

    /** Level coordinate of a full per-dimension coordinate at level @p l. */
    u32 levelCoord(u32 l, const std::array<u32, 3>& coords) const;

    /** Human-readable name like "UC(d0,d1)" or "UCUU(d0o,d1o,d0i,d1i)". */
    std::string name() const;

    /** Standard formats over a rows x cols matrix whose dims are (d0, d1). */
    static FormatDescriptor csr(u32 rows, u32 cols);
    static FormatDescriptor csc(u32 rows, u32 cols);
    static FormatDescriptor coo2d(u32 rows, u32 cols);
    static FormatDescriptor dense2d(u32 rows, u32 cols);
    /** BCSR: UCUU over (d0 outer, d1 outer, d0 inner, d1 inner). */
    static FormatDescriptor bcsr(u32 rows, u32 cols, u32 br, u32 bc);
    /** One-dimensionally blocked UCU (split only the column dimension). */
    static FormatDescriptor ucu(u32 rows, u32 cols, u32 bc);
    /** Sparse-block UUC: split columns, keep the inner level compressed. */
    static FormatDescriptor uuc(u32 rows, u32 cols, u32 kc);
    /** CSF (CCC) over a 3-tensor. */
    static FormatDescriptor csf3d(u32 di, u32 dk, u32 dl);

    bool operator==(const FormatDescriptor& o) const;

  private:
    void validate() const;

    u32 order_ = 0;
    std::array<u32, 3> dims_ = {0, 0, 0};
    std::array<u32, 3> splits_ = {1, 1, 1};
    std::vector<LevelSpec> levels_;
};

/** Thrown when building a format would exceed the storage budget
 *  (the analogue of the paper excluding schedules that run > 1 minute). */
class FormatTooLarge : public FatalError
{
  public:
    explicit FormatTooLarge(const std::string& msg) : FatalError(msg) {}
};

/** Storage arrays of one built level. */
struct BuiltLevel
{
    LevelFormat fmt = LevelFormat::Uncompressed;
    u32 extent = 0;
    /** C only: pos[p+1]-pos[p] children for parent position p. */
    std::vector<u64> pos;
    /** C only: child coordinates, one per position. */
    std::vector<u32> crd;
    /** Number of positions after this level. */
    u64 numPositions = 0;
};

/**
 * A sparse tensor materialized in a particular format. U levels below C
 * levels pad with explicit zeros (dense blocks), exactly as TACO does.
 */
class HierSparseTensor
{
  public:
    /** Build a 2D matrix in the given format.
     *  @throws FormatTooLarge if storage would exceed @p max_bytes. */
    static HierSparseTensor build(const FormatDescriptor& desc,
                                  const SparseMatrix& m,
                                  u64 max_bytes = kDefaultMaxBytes);

    /** Build a 3D tensor in the given format. */
    static HierSparseTensor build(const FormatDescriptor& desc,
                                  const Sparse3Tensor& t,
                                  u64 max_bytes = kDefaultMaxBytes);

    const FormatDescriptor& descriptor() const { return desc_; }
    const std::vector<BuiltLevel>& levels() const { return levels_; }
    const std::vector<float>& values() const { return vals_; }

    /** Total storage footprint in bytes (4-byte pos/crd/val entries,
     *  matching TACO's int32/float arrays). */
    u64 bytes() const { return bytes_; }

    /** Number of stored value positions (nnz plus dense-block padding). */
    u64 storedValues() const { return vals_.size(); }

    /**
     * Visit every stored position in storage order.
     *
     * @param fn callback(coords, value, in_bounds). Padding positions whose
     *        reconstructed coordinate falls outside the tensor bounds are
     *        reported with in_bounds = false (their value is always 0).
     */
    template <typename Fn>
    void
    forEachStored(Fn&& fn) const
    {
        std::vector<u32> level_coords(desc_.numLevels(), 0);
        walk(0, 0, level_coords, fn);
    }

    /** Number of coordinate slots at the first level (chunking domain for
     *  the parallel executor): the extent for U, the crd length for C. */
    u64
    topLevelSize() const
    {
        const BuiltLevel& top = levels_.front();
        return top.fmt == LevelFormat::Uncompressed ? top.extent
                                                    : top.crd.size();
    }

    /**
     * Visit stored positions under a contiguous range of first-level
     * entries (U: coordinates [begin, end); C: crd positions [begin, end)).
     * Disjoint ranges cover disjoint subtrees, which is what makes
     * top-level parallel execution race-free when the first level indexes
     * an output dimension.
     */
    template <typename Fn>
    void
    forEachStoredInTopRange(u64 begin, u64 end, Fn&& fn) const
    {
        std::vector<u32> level_coords(desc_.numLevels(), 0);
        const BuiltLevel& top = levels_.front();
        if (top.fmt == LevelFormat::Uncompressed) {
            for (u64 c = begin; c < end && c < top.extent; ++c) {
                level_coords[0] = static_cast<u32>(c);
                walk(1, c, level_coords, fn);
            }
        } else {
            for (u64 p = begin; p < end && p < top.crd.size(); ++p) {
                level_coords[0] = top.crd[p];
                walk(1, p, level_coords, fn);
            }
        }
    }

    /** Visit only true nonzeros, with reconstructed full coordinates. */
    void forEachNonzero(
        const std::function<void(const std::array<u32, 3>&, float)>& fn) const;

    /** Round-trip back to canonical COO (2D tensors only). */
    SparseMatrix toSparseMatrix() const;

    static constexpr u64 kDefaultMaxBytes = 512ull * 1024 * 1024;

  private:
    HierSparseTensor() = default;

    static HierSparseTensor buildImpl(const FormatDescriptor& desc,
                                      const std::vector<std::array<u32, 3>>& coords,
                                      const std::vector<float>& vals,
                                      u64 max_bytes);

    /** Reconstruct full coordinates from per-level coordinates.
     *  @return false if a padding coordinate is out of bounds. */
    bool reconstruct(const std::vector<u32>& level_coords,
                     std::array<u32, 3>& coords) const;

    template <typename Fn>
    void
    walk(u32 level, u64 position, std::vector<u32>& level_coords, Fn&& fn) const
    {
        if (level == desc_.numLevels()) {
            std::array<u32, 3> coords = {0, 0, 0};
            bool ok = reconstruct(level_coords, coords);
            fn(coords, vals_[position], ok);
            return;
        }
        const BuiltLevel& bl = levels_[level];
        if (bl.fmt == LevelFormat::Uncompressed) {
            for (u32 c = 0; c < bl.extent; ++c) {
                level_coords[level] = c;
                walk(level + 1, position * bl.extent + c, level_coords, fn);
            }
        } else {
            for (u64 p = bl.pos[position]; p < bl.pos[position + 1]; ++p) {
                level_coords[level] = bl.crd[p];
                walk(level + 1, p, level_coords, fn);
            }
        }
    }

    FormatDescriptor desc_;
    std::vector<BuiltLevel> levels_;
    std::vector<float> vals_;
    u64 bytes_ = 0;
};

} // namespace waco
