#include "tensor/coo.hpp"

#include <algorithm>
#include <cmath>

namespace waco {

SparseMatrix::SparseMatrix(u32 rows, u32 cols, std::vector<Triplet> triplets,
                           std::string name)
    : rows_(rows), cols_(cols), name_(std::move(name))
{
    for (const auto& t : triplets) {
        fatalIf(t.row >= rows || t.col >= cols,
                "triplet out of bounds in SparseMatrix construction");
    }
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet& a, const Triplet& b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    row_.reserve(triplets.size());
    col_.reserve(triplets.size());
    val_.reserve(triplets.size());
    for (const auto& t : triplets) {
        if (!row_.empty() && row_.back() == t.row && col_.back() == t.col) {
            val_.back() += t.val;
        } else {
            row_.push_back(t.row);
            col_.push_back(t.col);
            val_.push_back(t.val);
        }
    }
}

double
SparseMatrix::density() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return static_cast<double>(nnz()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

std::vector<u32>
SparseMatrix::rowNnz() const
{
    std::vector<u32> counts(rows_, 0);
    for (u32 r : row_)
        ++counts[r];
    return counts;
}

std::vector<u32>
SparseMatrix::colNnz() const
{
    std::vector<u32> counts(cols_, 0);
    for (u32 c : col_)
        ++counts[c];
    return counts;
}

SparseMatrix
SparseMatrix::transposed() const
{
    std::vector<Triplet> t;
    t.reserve(nnz());
    for (u64 n = 0; n < nnz(); ++n)
        t.push_back({col_[n], row_[n], val_[n]});
    SparseMatrix out(cols_, rows_, std::move(t), name_.empty() ? "" : name_ + "_T");
    return out;
}

SparseMatrix
SparseMatrix::resized(u32 new_rows, u32 new_cols) const
{
    fatalIf(new_rows == 0 || new_cols == 0, "resized to empty shape");
    std::vector<Triplet> t;
    t.reserve(nnz());
    double rs = static_cast<double>(new_rows) / static_cast<double>(rows_);
    double cs = static_cast<double>(new_cols) / static_cast<double>(cols_);
    for (u64 n = 0; n < nnz(); ++n) {
        u32 r = std::min<u32>(new_rows - 1,
                              static_cast<u32>(std::floor(row_[n] * rs)));
        u32 c = std::min<u32>(new_cols - 1,
                              static_cast<u32>(std::floor(col_[n] * cs)));
        t.push_back({r, c, val_[n]});
    }
    SparseMatrix out(new_rows, new_cols, std::move(t),
                     name_.empty() ? "" : name_ + "_resized");
    return out;
}

bool
SparseMatrix::operator==(const SparseMatrix& o) const
{
    return rows_ == o.rows_ && cols_ == o.cols_ && row_ == o.row_ &&
           col_ == o.col_ && val_ == o.val_;
}

Sparse3Tensor::Sparse3Tensor(u32 di, u32 dk, u32 dl, std::vector<Quad> entries,
                             std::string name)
    : dims_({di, dk, dl}), name_(std::move(name))
{
    for (const auto& e : entries) {
        fatalIf(e.i >= di || e.k >= dk || e.l >= dl,
                "entry out of bounds in Sparse3Tensor construction");
    }
    std::sort(entries.begin(), entries.end(), [](const Quad& a, const Quad& b) {
        if (a.i != b.i)
            return a.i < b.i;
        if (a.k != b.k)
            return a.k < b.k;
        return a.l < b.l;
    });
    for (const auto& e : entries) {
        if (!i_.empty() && i_.back() == e.i && k_.back() == e.k &&
            l_.back() == e.l) {
            val_.back() += e.val;
        } else {
            i_.push_back(e.i);
            k_.push_back(e.k);
            l_.push_back(e.l);
            val_.push_back(e.val);
        }
    }
}

} // namespace waco
