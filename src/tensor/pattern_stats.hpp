/**
 * @file
 * Cheap statistical summary of a sparsity pattern.
 *
 * Used in three places: the HumanFeature baseline extractor (Fig. 15), the
 * BestFormat classifier features, and the analytical machine model (dense
 * block fill ratios decide whether a blocked format pays off, row-skew
 * decides load balance, bandwidth decides dense-operand locality).
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "tensor/coo.hpp"
#include "util/common.hpp"

namespace waco {

/** Dense-block occupancy for one block edge length. */
struct BlockFill
{
    u32 blockSize = 0;      ///< Block edge length b.
    u64 occupiedBlocks = 0; ///< Number of b x b blocks containing a nonzero.
    double fill = 0.0;      ///< nnz / (occupiedBlocks * b * b).
};

/** Summary statistics of a sparse matrix pattern. */
struct PatternStats
{
    u32 rows = 0;
    u32 cols = 0;
    u64 nnz = 0;
    double density = 0.0;

    double nnzPerRowMean = 0.0;
    double nnzPerRowStd = 0.0;
    u32 nnzPerRowMax = 0;
    /** Gini coefficient of per-row nonzero counts; high = skewed rows. */
    double rowSkew = 0.0;
    /** Fraction of rows with no nonzeros. */
    double emptyRowFrac = 0.0;

    double nnzPerColMean = 0.0;
    double nnzPerColStd = 0.0;

    /** Mean |i - j| normalized by max(rows, cols). */
    double normalizedBandwidth = 0.0;
    /** Fraction of nonzeros with a horizontally adjacent nonzero (j+1). */
    double rowNeighborFrac = 0.0;
    /** Fraction of nonzeros with a vertically adjacent nonzero (i+1). */
    double colNeighborFrac = 0.0;
    /** Fraction of nonzeros whose mirrored coordinate is also a nonzero. */
    double symmetryFrac = 0.0;

    /** Occupancy of b x b blocks for b in {2, 4, 8, 16, 32}. */
    std::array<BlockFill, 5> blockFills = {};

    /** Fill ratio for the closest measured block size (interpolating). */
    double fillForBlock(u32 b) const;

    /** Occupied-block count for the closest measured block size. */
    u64 occupiedBlocksFor(u32 b) const;

    /** Flatten into a feature vector (for HumanFeature / BestFormat). */
    std::vector<float> toFeatureVector() const;

    /** Names matching toFeatureVector entries, for reports. */
    static std::vector<std::string> featureNames();
};

/** Compute all statistics in one pass over the matrix (O(nnz) time). */
PatternStats computePatternStats(const SparseMatrix& m);

/**
 * Order-stable 64-bit FNV-1a fingerprint of a pattern: exact dimensions
 * and nonzero count plus the bit patterns of every summary statistic and
 * block-fill entry. Identical matrices always collide (the service's
 * cross-request result cache keys on this); distinct patterns practically
 * never do, because any single differing nonzero shifts several of the
 * hashed statistics. Deliberately conservative: "similar" matrices get
 * different fingerprints — a cache hit must be safe, not just likely-good.
 */
u64 patternFingerprint(const PatternStats& s);

} // namespace waco
