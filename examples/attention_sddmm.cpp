/**
 * @file
 * Sparse attention scores via SDDMM: D[i,j] = M[i,j] * (Q K^T)[i,j], where
 * M is a banded+random attention mask — the pattern used by sparse
 * transformers. Demonstrates the SDDMM-specific freedom the paper
 * highlights (Section 5.2.1): with no reduction over either sparse index,
 * WACO may parallelize rows OR columns and pick row-/column-major formats
 * freely.
 */
#include <cstdio>

#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "exec/kernels.hpp"
#include "exec/reference.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;

int
main()
{
    setLogLevel(LogLevel::Warn);
    Rng rng(51);

    // Attention mask: local window + random global tokens.
    const u32 seq = 4096, head = 64;
    auto local = genBanded(seq, seq, 32, 0.9, rng);
    auto global = genHotColumns(seq, seq, 40000, 16, rng);
    std::vector<Triplet> t;
    for (u64 n = 0; n < local.nnz(); ++n)
        t.push_back({local.rowIndices()[n], local.colIndices()[n], 1.0f});
    for (u64 n = 0; n < global.nnz(); ++n)
        t.push_back({global.rowIndices()[n], global.colIndices()[n], 1.0f});
    SparseMatrix mask(seq, seq, std::move(t), "attention-mask");
    std::printf("attention mask: %u x %u, %llu allowed pairs (%.3f%%)\n",
                seq, seq, static_cast<unsigned long long>(mask.nnz()),
                mask.density() * 100);

    // Real SDDMM: scores = mask .* (Q K^T). B row-major, C column-major,
    // exactly the layouts the paper fixes for SDDMM.
    DenseMatrix q(seq, head, Layout::RowMajor);
    DenseMatrix kT(head, seq, Layout::ColMajor);
    q.randomize(rng);
    kT.randomize(rng);
    Timer timer;
    auto scores = sddmmCsr(mask, q, kT);
    std::printf("real SDDMM: %.1f ms for %llu scores\n", timer.millis(),
                static_cast<unsigned long long>(scores.nnz()));
    auto ref = sddmmReference(mask, q, kT);
    double err = 0;
    for (u64 n = 0; n < ref.nnz(); ++n)
        err = std::max(err, std::abs(static_cast<double>(ref.values()[n]) -
                                     scores.values()[n]));
    std::printf("validated against reference: max|err| = %.2e\n", err);

    // Tune the mask's format+schedule for repeated attention computation.
    std::printf("\ntraining a small SDDMM co-optimizer...\n");
    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 6;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 15;
    opt.train.epochs = 5;
    WacoTuner tuner(Algorithm::SDDMM, MachineConfig::intel24(), opt);
    CorpusOptions copt;
    copt.count = 10;
    copt.minDim = 1024;
    copt.maxDim = 8192;
    copt.minNnz = 4000;
    copt.maxNnz = 40000;
    tuner.train(makeCorpus(copt, 52));

    auto outcome = tuner.tune(mask);
    auto shape = ProblemShape::forMatrix(Algorithm::SDDMM, seq, seq);
    auto fixed = tuner.oracle().measure(mask, shape, defaultSchedule(shape));
    const auto& info = algorithmInfo(Algorithm::SDDMM);
    std::printf("WACO chose:\n%s", outcome.best.describe().c_str());
    std::printf("parallelized over the '%s' index (SDDMM may parallelize "
                "rows or columns)\n",
                info.indexNames[slotIndex(outcome.best.parallelSlot)].c_str());
    std::printf("machine-model time %.3f ms vs CSR default %.3f ms "
                "(%.2fx)\n",
                outcome.bestMeasured.seconds * 1e3, fixed.seconds * 1e3,
                fixed.seconds / outcome.bestMeasured.seconds);
    return 0;
}
