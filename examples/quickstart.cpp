/**
 * @file
 * Quickstart: the 60-second tour of the WACO library.
 *
 *  1. Make (or load) a sparse matrix.
 *  2. Express formats with the TACO-style format abstraction and run the
 *     real execution engine on them.
 *  3. Train a small workload-aware co-optimizer and let it pick the format
 *     and schedule for a new matrix.
 *
 * Usage: example_quickstart [matrix.mtx]
 * (With no argument a synthetic matrix is used, so the example always runs.)
 */
#include <cstdio>

#include "codegen/emit.hpp"
#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "exec/kernels.hpp"
#include "exec/reference.hpp"
#include "tensor/mmio.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;

int
main(int argc, char** argv)
{
    setLogLevel(LogLevel::Warn);

    // ---- 1. A sparse matrix --------------------------------------------
    Rng rng(7);
    SparseMatrix m = argc > 1 ? readMatrixMarketFile(argv[1])
                              : genDenseBlocks(2048, 2048, 8, 400, 0.9, rng);
    std::printf("matrix '%s': %u x %u, %llu nonzeros (density %.4f%%)\n",
                m.name().c_str(), m.rows(), m.cols(),
                static_cast<unsigned long long>(m.nnz()),
                m.density() * 100.0);

    // ---- 2. Formats + the real executor --------------------------------
    DenseVector x(m.cols());
    x.randomize(rng);
    auto reference = spmvReference(m, x);
    std::printf("\nSpMV wall-clock across formats (real execution):\n");
    for (const auto& desc :
         {FormatDescriptor::csr(m.rows(), m.cols()),
          FormatDescriptor::csc(m.rows(), m.cols()),
          FormatDescriptor::bcsr(m.rows(), m.cols(), 8, 8),
          FormatDescriptor::ucu(m.rows(), m.cols(), 16)}) {
        auto t = HierSparseTensor::build(desc, m);
        Timer timer;
        auto y = spmvHier(t, x);
        double ms = timer.millis();
        std::printf("  %-22s %8.2f ms   stored %8llu vals (%.2fx padding)"
                    "   max|err| %.2e\n",
                    desc.name().c_str(), ms,
                    static_cast<unsigned long long>(t.storedValues()),
                    static_cast<double>(t.storedValues()) / m.nnz(),
                    maxAbsDiff(reference, y));
    }

    // ---- 3. Workload-aware co-optimization ------------------------------
    std::printf("\ntraining a small co-optimizer (SpMV)...\n");
    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 6;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 15;
    opt.train.epochs = 5;
    WacoTuner tuner(Algorithm::SpMV, MachineConfig::intel24(), opt);

    CorpusOptions copt;
    copt.count = 10;
    copt.minDim = 512;
    copt.maxDim = 2048;
    copt.minNnz = 2000;
    copt.maxNnz = 10000;
    tuner.train(makeCorpus(copt, 99));

    auto outcome = tuner.tune(m);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, m.rows(), m.cols());
    auto fixed = tuner.oracle().measure(m, shape, defaultSchedule(shape));
    std::printf("\nWACO chose:\n%s", outcome.best.describe().c_str());
    std::printf("format: %s\n", formatOf(outcome.best, shape).name().c_str());
    std::printf("predicted machine time: %s vs CSR default %s (%.2fx)\n",
                outcome.bestMeasured.seconds < 1
                    ? std::to_string(outcome.bestMeasured.seconds * 1e3)
                          .substr(0, 5)
                          .append("ms")
                          .c_str()
                    : "??",
                std::to_string(fixed.seconds * 1e3).substr(0, 5)
                    .append("ms")
                    .c_str(),
                fixed.seconds / outcome.bestMeasured.seconds);
    std::printf("tuning overhead: %.2fs (feature %.2fs, search %.2fs, "
                "re-measure %.2fs)\n",
                outcome.tuningSeconds(), outcome.featureSeconds,
                outcome.searchSeconds, outcome.remeasureSeconds);

    // Execute the chosen format for real and validate.
    auto chosen = HierSparseTensor::build(formatOf(outcome.best, shape), m);
    auto y = spmvHier(chosen, x);
    std::printf("result check vs reference: max|err| = %.2e\n",
                maxAbsDiff(reference, y));

    // Show the TACO-style C code the chosen schedule corresponds to.
    std::printf("\ngenerated C for the chosen schedule:\n%s",
                emitC(outcome.best, shape).c_str());
    return 0;
}
