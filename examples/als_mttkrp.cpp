/**
 * @file
 * CP decomposition by alternating least squares on a sparse 3-tensor: the
 * MTTKRP kernel dominates ALS, so tuning the tensor's format pays across
 * the many iterations. Runs real MTTKRP + a simplified ALS factor update
 * (gradient step instead of the full normal-equations solve, to keep the
 * example dependency-free), then tunes the tensor with WACO.
 */
#include <cmath>
#include <cstdio>

#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "exec/kernels.hpp"
#include "exec/reference.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;

int
main()
{
    setLogLevel(LogLevel::Warn);
    Rng rng(61);
    const u32 di = 1024, dk = 768, dl = 512, rank = 16;
    auto tensor = genTensor3(di, dk, dl, 60000, rng);
    std::printf("tensor: %u x %u x %u, %llu nonzeros\n", di, dk, dl,
                static_cast<unsigned long long>(tensor.nnz()));

    DenseMatrix a(di, rank), b(dk, rank), c(dl, rank);
    a.randomize(rng);
    b.randomize(rng);
    c.randomize(rng);

    // A few ALS-flavored sweeps: factor A absorbs the MTTKRP of the other
    // two factors (simplified: plain replacement + normalization).
    Timer timer;
    for (int sweep = 0; sweep < 3; ++sweep) {
        auto m = mttkrpCsf(tensor, b, c); // D[i,j] = A[i,k,l] B[k,j] C[l,j]
        for (u64 i = 0; i < a.rows(); ++i) {
            float norm = 0.0f;
            for (u32 j = 0; j < rank; ++j)
                norm += m.at(i, j) * m.at(i, j);
            norm = std::sqrt(norm) + 1e-6f;
            for (u32 j = 0; j < rank; ++j)
                a.at(i, j) = m.at(i, j) / norm;
        }
    }
    std::printf("3 ALS sweeps (real MTTKRP, |j|=%u): %.1f ms\n", rank,
                timer.millis());
    // Sanity: real CSF kernel agrees with the reference.
    auto want = mttkrpReference(tensor, b, c);
    auto got = mttkrpCsf(tensor, b, c);
    std::printf("kernel check: max|err| = %.2e\n", maxAbsDiff(want, got));

    std::printf("\ntraining a small MTTKRP co-optimizer...\n");
    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 5;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 12;
    opt.train.epochs = 5;
    WacoTuner tuner(Algorithm::MTTKRP, MachineConfig::intel24(), opt);
    CorpusOptions copt;
    copt.count = 8;
    copt.minDim = 256;
    copt.maxDim = 1024;
    copt.minNnz = 4000;
    copt.maxNnz = 30000;
    tuner.train3d(makeCorpus3d(copt, 62));

    auto outcome = tuner.tune3d(tensor);
    auto shape = ProblemShape::forTensor3(Algorithm::MTTKRP, di, dk, dl);
    auto fixed = tuner.oracle().measure(tensor, shape,
                                        defaultSchedule(shape));
    std::printf("WACO chose:\n%s", outcome.best.describe().c_str());
    std::printf("machine-model time %.3f ms vs CSF default %.3f ms "
                "(%.2fx)\n",
                outcome.bestMeasured.seconds * 1e3, fixed.seconds * 1e3,
                fixed.seconds / outcome.bestMeasured.seconds);
    std::printf("(an ALS solver runs MTTKRP thousands of times, so even "
                "modest per-call wins amortize the tuning cost)\n");
    return 0;
}
