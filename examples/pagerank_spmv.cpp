/**
 * @file
 * PageRank on a synthetic web-graph-like (Kronecker) matrix — the paper's
 * Table 8 SpMV scenario with N_runs = 50 iterations.
 *
 * Demonstrates the end-to-end accounting a real application faces: the
 * tuned kernel is only worth its tuning cost if the kernel is invoked
 * enough times. PageRank's ~50 SpMVs are NOT enough to amortize WACO
 * (matching the paper's conclusion), and the example shows the numbers.
 * The power iteration itself runs on the real CSR executor.
 */
#include <cmath>
#include <cstdio>

#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "exec/kernels.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;

namespace {

/** One PageRank power iteration: r' = d * A^T r / outdeg + (1-d)/n. */
DenseVector
pagerank(const SparseMatrix& graph, u32 iters, double damping = 0.85)
{
    // Column-normalize by out-degree, transpose once: PR works on A^T.
    auto out_deg = graph.rowNnz();
    std::vector<Triplet> t;
    for (u64 n = 0; n < graph.nnz(); ++n) {
        u32 src = graph.rowIndices()[n];
        t.push_back({graph.colIndices()[n], src,
                     1.0f / static_cast<float>(std::max<u32>(1, out_deg[src]))});
    }
    SparseMatrix pt(graph.cols(), graph.rows(), std::move(t));
    Csr csr(pt);
    u32 n = graph.rows();
    DenseVector r(n, 1.0f / static_cast<float>(n));
    for (u32 it = 0; it < iters; ++it) {
        auto next = spmvCsr(csr, r);
        for (u64 i = 0; i < n; ++i) {
            r[i] = static_cast<float>(damping * next[i] +
                                      (1.0 - damping) / n);
        }
    }
    return r;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Warn);
    Rng rng(31);
    auto graph = genKronecker(13, rng); // 8192-node scale-free-ish graph
    std::printf("web graph: %u nodes, %llu edges\n", graph.rows(),
                static_cast<unsigned long long>(graph.nnz()));

    // Run the real PageRank to have an actual application result.
    Timer timer;
    auto ranks = pagerank(graph, 50);
    double pr_seconds = timer.seconds();
    u32 top = 0;
    for (u32 i = 1; i < graph.rows(); ++i) {
        if (ranks[i] > ranks[top])
            top = i;
    }
    std::printf("50 power iterations in %.1f ms (real execution); "
                "top node %u with rank %.5f\n",
                pr_seconds * 1e3, top, ranks[top]);

    // Now the auto-tuning economics on the simulated 24-core machine.
    std::printf("\ntraining a small SpMV co-optimizer...\n");
    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 6;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 15;
    opt.train.epochs = 5;
    WacoTuner tuner(Algorithm::SpMV, MachineConfig::intel24(), opt);
    CorpusOptions copt;
    copt.count = 10;
    copt.minDim = 1024;
    copt.maxDim = 8192;
    copt.minNnz = 4000;
    copt.maxNnz = 40000;
    tuner.train(makeCorpus(copt, 32));

    auto outcome = tuner.tune(graph);
    auto shape =
        ProblemShape::forMatrix(Algorithm::SpMV, graph.rows(), graph.cols());
    auto fixed = tuner.oracle().measure(graph, shape, defaultSchedule(shape));
    double speedup = fixed.seconds / outcome.bestMeasured.seconds;
    double tuning = outcome.tuningSeconds() + outcome.convertSeconds;
    std::printf("WACO: %.3f ms/SpMV vs CSR default %.3f ms (%.2fx), "
                "tuning cost %.2f s\n",
                outcome.bestMeasured.seconds * 1e3, fixed.seconds * 1e3,
                speedup, tuning);

    double per_run_gain = fixed.seconds - outcome.bestMeasured.seconds;
    if (per_run_gain > 0) {
        double breakeven = tuning / per_run_gain;
        std::printf("break-even after %.0f SpMV invocations; PageRank runs "
                    "50 -> %s\n",
                    breakeven,
                    breakeven > 50
                        ? "NOT worth tuning (use BestFormat or MKL instead, "
                          "as Table 8 concludes)"
                        : "worth tuning");
    } else {
        std::printf("no speedup found for this graph; the default was "
                    "already optimal.\n");
    }
    return 0;
}
