/**
 * @file
 * Graph-neural-network inference — the paper's Table 8 SpMM scenario
 * (N_runs = 10,000 message-passing SpMMs over a fixed adjacency).
 *
 * A two-layer GCN-style forward pass runs on the real executor
 * (normalized adjacency x features, ReLU between layers); the tuned
 * format's end-to-end benefit over the whole inference workload is then
 * computed on the machine model, showing WACO winning at GNN scale.
 */
#include <cstdio>

#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "exec/kernels.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;

int
main()
{
    setLogLevel(LogLevel::Warn);
    Rng rng(41);
    // Scale-free citation-graph stand-in with self-loops.
    auto base = genKronecker(12, rng);
    std::vector<Triplet> t;
    for (u64 n = 0; n < base.nnz(); ++n)
        t.push_back({base.rowIndices()[n], base.colIndices()[n], 1.0f});
    for (u32 i = 0; i < base.rows(); ++i)
        t.push_back({i, i, 1.0f});
    SparseMatrix adj(base.rows(), base.cols(), std::move(t), "citations");
    std::printf("graph: %u nodes, %llu edges (with self-loops)\n",
                adj.rows(), static_cast<unsigned long long>(adj.nnz()));

    // Symmetric-normalize: D^-1/2 (A+I) D^-1/2.
    auto deg = adj.rowNnz();
    std::vector<float>& vals = adj.values();
    for (u64 n = 0; n < adj.nnz(); ++n) {
        u32 i = adj.rowIndices()[n], j = adj.colIndices()[n];
        vals[n] = 1.0f / std::sqrt(static_cast<float>(deg[i]) *
                                   static_cast<float>(deg[j]));
    }

    // Real 2-layer GCN forward pass with 32-wide features.
    const u32 feat = 32;
    DenseMatrix h(adj.cols(), feat);
    h.randomize(rng);
    Csr csr(adj);
    Timer timer;
    auto h1 = spmmCsr(csr, h);
    for (auto& x : h1.data())
        x = std::max(0.0f, x); // ReLU
    auto h2 = spmmCsr(csr, h1);
    std::printf("2-layer GCN forward (real execution): %.1f ms, output "
                "%llux%llu\n",
                timer.millis(), static_cast<unsigned long long>(h2.rows()),
                static_cast<unsigned long long>(h2.cols()));

    // The adjacency is reused for every layer, batch and epoch: tune it.
    std::printf("\ntraining a small SpMM co-optimizer...\n");
    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 6;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 15;
    opt.train.epochs = 5;
    WacoTuner tuner(Algorithm::SpMM, MachineConfig::intel24(), opt);
    CorpusOptions copt;
    copt.count = 10;
    copt.minDim = 1024;
    copt.maxDim = 8192;
    copt.minNnz = 4000;
    copt.maxNnz = 40000;
    tuner.train(makeCorpus(copt, 42));

    auto outcome = tuner.tune(adj);
    auto shape =
        ProblemShape::forMatrix(Algorithm::SpMM, adj.rows(), adj.cols());
    auto fixed = tuner.oracle().measure(adj, shape, defaultSchedule(shape));
    std::printf("WACO chose format %s: %.3f ms/SpMM vs CSR %.3f ms "
                "(%.2fx)\n",
                formatOf(outcome.best, shape).name().c_str(),
                outcome.bestMeasured.seconds * 1e3, fixed.seconds * 1e3,
                fixed.seconds / outcome.bestMeasured.seconds);

    const double kRuns = 10000; // Table 8's GNN scenario
    double tuning = outcome.tuningSeconds() + outcome.convertSeconds;
    double e2e_waco = tuning + kRuns * outcome.bestMeasured.seconds;
    double e2e_fixed = kRuns * fixed.seconds;
    std::printf("end-to-end over %.0f SpMMs: WACO %.2fs (incl. %.2fs "
                "tuning) vs untuned %.2fs -> %s\n",
                kRuns, e2e_waco, tuning, e2e_fixed,
                e2e_waco < e2e_fixed ? "WACO wins" : "untuned wins");
    return 0;
}
