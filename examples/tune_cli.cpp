/**
 * @file
 * Command-line tuner: point it at a MatrixMarket file (or let it generate
 * a demo matrix), pick an algorithm, and get back the co-optimized format
 * + schedule, the TACO-style C code implementing it, and the expected
 * speedup on the modelled machine.
 *
 * The fault-injection flags drive the whole fault-tolerance layer end to
 * end: measurements flow oracle -> FaultyOracle -> RobustMeasurer, corpus
 * labeling checkpoints to --checkpoint and resumes from it, and training
 * runs with gradient clipping + divergence rollback.
 *
 * --verify-only runs the static analysis pipeline (schedule verifier,
 * lowering, loop-nest verifier, asymptotic-dominance perf notes) over one
 * schedule — the CSR default, or any schedule given as a key() string via
 * --schedule — without training or measuring anything. Legal schedules
 * additionally print their asymptotic bound profile and WACO-S3xx notes
 * explaining every bound on which the default schedule beats them.
 * Diagnostics print to stdout and, with --diag-out, export as JSON; the
 * exit code is 1 when any WACO-… error-severity finding fires, 0
 * otherwise.
 *
 * --no-asym-filter disables the tuner's stage-0 asymptotic dominance
 * filter, reproducing the pre-filter measurement protocol exactly.
 *
 * --serve demos the tuning-as-a-service layer instead of a single tune:
 * a TunerService is stood up over the trained tuner and a batch of
 * requests (repeats included, so the cross-request cache shows itself) is
 * pushed through with per-request deadlines (--deadline-ms), a bounded
 * admission queue (--max-queue), and, with --cache-journal, a crash-safe
 * persistent result cache — the demo then "restarts" the server on the
 * same journal and shows the repeated request served from the recovered
 * cache with zero new measurements.
 *
 * Usage: example_tune_cli [spmv|spmm|sddmm] [matrix.mtx]
 *          [--alg NAME] (any matrix algorithm by name, e.g.
 *                        --alg fused_sddmm_spmm)
 *          [--faults P] [--noise SIGMA] [--timeout SECS]
 *          [--retries N] [--median K] [--checkpoint FILE]
 *          [--trace-out FILE] [--metrics-out FILE]
 *          [--verify-only] [--schedule KEY] [--diag-out FILE]
 *          [--no-asym-filter]
 *          [--serve] [--deadline-ms N] [--max-queue N]
 *          [--cache-journal FILE]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>

#include "analysis/asymptotic_cost.hpp"
#include "analysis/loopnest_verifier.hpp"
#include "analysis/schedule_verifier.hpp"
#include "codegen/emit.hpp"
#include "codegen/kernel_backend.hpp"
#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "perfmodel/faulty_oracle.hpp"
#include "perfmodel/wallclock_backend.hpp"
#include "service/tuner_service.hpp"
#include "tensor/mmio.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

using namespace waco;

namespace {

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [spmv|spmm|sddmm] [matrix.mtx]\n"
                 "          [--alg NAME]  (e.g. --alg fused_sddmm_spmm)\n"
                 "          [--faults P] [--noise SIGMA] [--timeout SECS]\n"
                 "          [--retries N] [--median K] [--checkpoint FILE]\n"
                 "          [--trace-out FILE] [--metrics-out FILE]\n"
                 "          [--verify-only] [--schedule KEY] "
                 "[--diag-out FILE]\n"
                 "          [--no-asym-filter]\n"
                 "          [--serve] [--deadline-ms N] [--max-queue N]\n"
                 "          [--cache-journal FILE]\n"
                 "          [--backend interp|compiled] [--emit-out DIR]\n",
                 argv0);
    std::exit(2);
}

/** The layouts the schedule chose for the dense INPUT operands, in
 *  KernelEmitOptions::inputRowMajor order (outputs skipped). */
std::vector<bool>
scheduleInputLayouts(const SuperSchedule& s)
{
    const AlgorithmInfo& info = algorithmInfo(s.alg);
    std::vector<bool> layouts;
    for (std::size_t op = 0; op < info.denseOperands.size(); ++op) {
        const DenseOperand& d = info.denseOperands[op];
        if (d.isOutput)
            continue;
        layouts.push_back(d.layoutFixed || s.denseRowMajor.size() <= op
                              ? d.rowMajorDefault
                              : static_cast<bool>(s.denseRowMajor[op]));
    }
    return layouts;
}

/** Dump both emitters' output for @p s into @p dir: the compilable
 *  kernel TU (what the JIT backend feeds the C compiler) and the
 *  TACO-style pretty-printed nest. */
void
emitSourcesTo(const std::string& dir, const SuperSchedule& s,
              const ProblemShape& shape)
{
    std::filesystem::create_directories(dir);
    LoopNest nest = lower(s, shape);
    KernelEmitOptions kopt;
    kopt.inputRowMajor = scheduleInputLayouts(s);
    kopt.cacheKey =
        kernelCacheKey(nest, kopt.inputRowMajor, kopt.clampSplitTails);
    const std::string base = dir + "/" + algorithmName(s.alg);
    std::ofstream(base + "_kernel.c") << emitKernelC(nest, kopt);
    std::ofstream(base + "_taco.c") << emitC(nest, s.numThreads, s.key());
    std::printf("wrote %s_kernel.c and %s_taco.c\n", base.c_str(),
                base.c_str());
}

} // namespace

int
run(int argc, char** argv)
{
    setLogLevel(LogLevel::Warn);
    Algorithm alg = Algorithm::SpMM;
    std::string matrix_path;
    FaultConfig faults;
    bool faulty = false;
    RetryPolicy retry;
    std::string checkpoint_path;
    std::string trace_path, metrics_path;
    bool verify_only = false;
    bool asym_filter = true;
    std::string schedule_key, diag_path;
    bool serve = false;
    double deadline_ms = std::numeric_limits<double>::infinity();
    u32 max_queue = 16;
    std::string journal_path;
    KernelBackendKind backend_kind = KernelBackendKind::Interpreter;
    bool backend_set = false;
    std::string emit_dir;

    for (int i = 1; i < argc; ++i) {
        auto num = [&](double lo) {
            if (i + 1 >= argc)
                usage(argv[0]);
            double v = std::atof(argv[++i]);
            if (v < lo)
                usage(argv[0]);
            return v;
        };
        if (!std::strcmp(argv[i], "spmv"))
            alg = Algorithm::SpMV;
        else if (!std::strcmp(argv[i], "spmm"))
            alg = Algorithm::SpMM;
        else if (!std::strcmp(argv[i], "sddmm"))
            alg = Algorithm::SDDMM;
        else if (!std::strcmp(argv[i], "--alg")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            if (!algorithmFromName(argv[++i], alg)) {
                std::fprintf(stderr, "unknown algorithm '%s'\n", argv[i]);
                usage(argv[0]);
            }
            if (algorithmInfo(alg).sparseOrder != 2) {
                std::fprintf(stderr,
                             "'%s' is not a matrix algorithm; this tool "
                             "tunes 2D sparse inputs\n",
                             argv[i]);
                usage(argv[0]);
            }
        } else if (!std::strcmp(argv[i], "--faults")) {
            faults.failProb = num(0.0);
            faulty = true;
        } else if (!std::strcmp(argv[i], "--noise")) {
            faults.noiseSigma = num(0.0);
            faulty = true;
        } else if (!std::strcmp(argv[i], "--timeout")) {
            faults.timeoutSeconds = num(0.0);
            faulty = true;
        } else if (!std::strcmp(argv[i], "--retries")) {
            retry.maxAttempts = static_cast<u32>(num(1.0));
        } else if (!std::strcmp(argv[i], "--median")) {
            retry.medianOf = static_cast<u32>(num(1.0));
        } else if (!std::strcmp(argv[i], "--checkpoint")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            checkpoint_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--trace-out")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            trace_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--metrics-out")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            metrics_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--verify-only")) {
            verify_only = true;
        } else if (!std::strcmp(argv[i], "--no-asym-filter")) {
            asym_filter = false;
        } else if (!std::strcmp(argv[i], "--schedule")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            schedule_key = argv[++i];
        } else if (!std::strcmp(argv[i], "--diag-out")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            diag_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--serve")) {
            serve = true;
        } else if (!std::strcmp(argv[i], "--deadline-ms")) {
            deadline_ms = num(0.0);
        } else if (!std::strcmp(argv[i], "--max-queue")) {
            max_queue = static_cast<u32>(num(0.0));
        } else if (!std::strcmp(argv[i], "--cache-journal")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            journal_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--backend")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            if (!kernelBackendFromName(argv[++i], backend_kind)) {
                std::fprintf(stderr, "unknown backend '%s'\n", argv[i]);
                usage(argv[0]);
            }
            backend_set = true;
        } else if (!std::strcmp(argv[i], "--emit-out")) {
            if (i + 1 >= argc)
                usage(argv[0]);
            emit_dir = argv[++i];
        } else if (argv[i][0] != '-' && matrix_path.empty()) {
            matrix_path = argv[i];
        } else {
            usage(argv[0]);
        }
    }

    // Observability is off by default; either output flag switches the
    // whole pipeline to instrumented mode before any work starts.
    if (!trace_path.empty())
        trace::setEnabled(true);
    if (!metrics_path.empty())
        metrics::setEnabled(true);

    if (backend_set) {
        setActiveKernelBackend(backend_kind);
        if (backend_kind == KernelBackendKind::Compiled) {
            if (compiledBackend().compilerAvailable())
                std::printf("kernel backend: compiled (%s)\n",
                            compiledBackend().compilerPath().c_str());
            else
                std::printf("kernel backend: compiled requested, but no "
                            "working C compiler was found; executions fall "
                            "back to the interpreter\n");
        }
    }

    Rng rng(77);
    SparseMatrix m = !matrix_path.empty()
        ? readMatrixMarketFile(matrix_path)
        : genPowerLawRows(4096, 4096, 60000, 0.9, rng, false);
    std::printf("%s on '%s' (%u x %u, %llu nnz)\n",
                algorithmName(alg).c_str(), m.name().c_str(), m.rows(),
                m.cols(), static_cast<unsigned long long>(m.nnz()));

    if (verify_only) {
        // Static check only: no training, no measurement, no codegen.
        auto shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
        SuperSchedule s = schedule_key.empty()
                              ? defaultSchedule(shape)
                              : SuperSchedule::parseKey(schedule_key);
        auto diags = analysis::verifyLowered(s, shape);
        // WACO-S3xx: how this schedule's asymptotic bounds compare to the
        // default's (emits nothing for schedules the verifier rejects).
        analysis::asymptoticPerfNotes(s, shape, diags);
        std::printf("verifying schedule\n  %s\n", s.key().c_str());
        if (!diags.hasErrors())
            std::printf("%s",
                        analysis::asymptoticBounds(s, shape)
                            .describe()
                            .c_str());
        std::printf("%llu error(s), %llu warning(s), %llu perf note(s)\n",
                    static_cast<unsigned long long>(diags.errorCount()),
                    static_cast<unsigned long long>(diags.warningCount()),
                    static_cast<unsigned long long>(diags.noteCount()));
        if (!diags.empty())
            std::printf("%s", diags.format().c_str());
        if (!diag_path.empty()) {
            analysis::writeDiagnosticsJson(diags, diag_path);
            std::printf("wrote diagnostics to %s\n", diag_path.c_str());
        }
        if (!emit_dir.empty() && !diags.hasErrors())
            emitSourcesTo(emit_dir, s, shape);
        return diags.hasErrors() ? 1 : 0;
    }

    WacoOptions opt;
    opt.asymFilter = asym_filter;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 6;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 15;
    opt.train.epochs = 5;
    opt.retry = retry;
    if (faulty) {
        // A flaky backend needs the full hardening: retries, denoising,
        // gradient clipping and divergence rollback.
        if (retry.medianOf == 1)
            opt.retry.medianOf = 3;
        opt.train.clipNorm = 10.0;
        opt.train.divergeFactor = 10.0;
    }
    WacoTuner tuner(alg, MachineConfig::intel24(), opt);
    std::unique_ptr<FaultyOracle> faulty_backend;
    if (faulty) {
        std::printf("fault injection: fail %.0f%%, noise sigma %.2f, "
                    "timeout %.3gs; retries %u, median-of-%u\n",
                    faults.failProb * 100.0, faults.noiseSigma,
                    faults.timeoutSeconds, opt.retry.maxAttempts,
                    opt.retry.medianOf);
        faulty_backend =
            std::make_unique<FaultyOracle>(tuner.oracle(), faults);
        tuner.setMeasurementBackend(*faulty_backend);
    }
    std::unique_ptr<WallclockMeasurer> wallclock;
    if (backend_set) {
        if (faulty)
            std::printf("note: --backend measures real wall time; the "
                        "fault-injection flags shape the analytical oracle "
                        "and are ignored\n");
        KernelBackend& engine =
            backend_kind == KernelBackendKind::Compiled
                ? static_cast<KernelBackend&>(compiledBackend())
                : interpreterBackend();
        wallclock = std::make_unique<WallclockMeasurer>(engine);
        tuner.setMeasurementBackend(*wallclock);
        std::printf("measurements: wall-clock execution through the '%s' "
                    "backend\n",
                    engine.name().c_str());
    }

    CorpusOptions copt;
    copt.count = 10;
    copt.minDim = 1024;
    copt.maxDim = 8192;
    copt.minNnz = 4000;
    copt.maxNnz = 60000;
    auto corpus = makeCorpus(copt, 78);
    std::printf("training the cost model on a synthetic corpus...\n");
    if (!checkpoint_path.empty()) {
        // Checkpointed labeling: re-running after an interruption resumes
        // from the flushed prefix instead of relabeling from scratch.
        LabelingOptions lopt;
        lopt.schedulesPerMatrix = opt.schedulesPerMatrix;
        lopt.seed = opt.seed;
        lopt.checkpointPath = checkpoint_path;
        RobustMeasurer robust(tuner.backend(), opt.retry);
        auto ds = buildDatasetResumable(alg, corpus, robust, lopt);
        tuner.trainOnDataset(ds);
    } else {
        tuner.train(corpus);
    }

    if (serve) {
        using namespace waco::service;
        ServiceConfig scfg;
        scfg.maxQueue = max_queue;
        // The demo batch comes from one "tenant"; let the queue bound, not
        // the per-tenant fairness cap, be the admission limit here.
        scfg.maxInflightPerTenant = std::max(max_queue, 1u) + 1;
        scfg.defaultDeadlineSeconds = deadline_ms * 1e-3;
        scfg.cacheJournalPath = journal_path;

        // The demo batch: the input matrix three times (the 2nd/3rd show
        // the cross-request cache) plus a couple of fresh patterns.
        Rng srng(177);
        std::vector<SparseMatrix> batch = {m, m};
        batch.push_back(genUniform(1024, 1024, 20000, srng));
        batch.push_back(genPowerLawRows(2048, 2048, 30000, 1.2, srng));
        batch.push_back(m);

        std::string journal_note =
            journal_path.empty() ? "" : ", journal " + journal_path;
        std::printf("\n--- serving %zu requests (deadline %.3g ms, "
                    "queue %u%s) ---\n",
                    batch.size(), deadline_ms, max_queue,
                    journal_note.c_str());
        auto serve_batch = [&](TunerService& server) {
            std::vector<TicketPtr> tickets;
            for (const auto& req : batch)
                tickets.push_back(server.submit(req));
            std::printf("  %-4s %-18s %-17s %-10s %s\n", "#", "status",
                        "rung", "ms", "expected ms");
            for (std::size_t i = 0; i < tickets.size(); ++i) {
                const TuneResponse& r = tickets[i]->wait();
                std::printf("  %-4zu %-18s %-17s %-10.3f %.3f\n", i,
                            serviceStatusName(r.status), rungName(r.rung),
                            r.latencySeconds * 1e3,
                            r.expectedSeconds * 1e3);
            }
            ServiceStats st = server.stats();
            std::printf("  p50 %.3f ms, p99 %.3f ms, %llu cache hit(s), "
                        "%llu shed\n",
                        st.latencyP50 * 1e3, st.latencyP99 * 1e3,
                        static_cast<unsigned long long>(st.cacheHits),
                        static_cast<unsigned long long>(st.shed));
        };
        u64 measured_before = tuner.backend().measurementCount();
        {
            TunerService server(tuner, scfg);
            serve_batch(server);
        }
        if (!journal_path.empty()) {
            // Cold restart on the same journal: the repeated request is
            // served from the recovered cache without re-measuring.
            std::printf("\n--- cold restart: recovering %s ---\n",
                        journal_path.c_str());
            TunerService server(tuner, scfg);
            std::printf("  recovered %llu cached result(s), dropped %llu "
                        "torn byte(s)\n",
                        static_cast<unsigned long long>(
                            server.cache().recoveredRecords()),
                        static_cast<unsigned long long>(
                            server.cache().droppedBytes()));
            u64 count_before = tuner.backend().measurementCount();
            const TuneResponse& r = server.submit(m)->wait();
            std::printf("  repeat request: %s via %s (%.3f ms, %llu new "
                        "measurements)\n",
                        serviceStatusName(r.status), rungName(r.rung),
                        r.latencySeconds * 1e3,
                        static_cast<unsigned long long>(
                            tuner.backend().measurementCount() -
                            count_before));
        }
        (void)measured_before;
        if (!metrics_path.empty()) {
            metrics::writeMetricsJson(metrics_path);
            std::printf("wrote metrics to %s\n", metrics_path.c_str());
        }
        if (!trace_path.empty()) {
            trace::writeChromeTrace(trace_path);
            std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
        }
        return 0;
    }

    auto outcome = tuner.tune(m);
    auto shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
    auto fixed = tuner.oracle().measure(m, shape, defaultSchedule(shape));
    std::printf("\n--- chosen configuration ---\n%s",
                outcome.best.describe().c_str());
    std::printf("expected: %.3f ms vs CSR default %.3f ms (%.2fx)\n",
                outcome.bestMeasured.seconds * 1e3, fixed.seconds * 1e3,
                fixed.seconds / outcome.bestMeasured.seconds);
    if (opt.asymFilter) {
        std::printf("asym filter: %llu dominated candidate(s) dropped "
                    "unmeasured, %llu kept\n",
                    static_cast<unsigned long long>(outcome.asymRejected),
                    static_cast<unsigned long long>(outcome.asymKept));
    }
    if (faulty) {
        const auto& st = outcome.remeasureStats;
        std::printf("remeasure stats: %llu attempts, %llu retries, "
                    "%llu faults, %llu timeouts, %llu discarded%s\n",
                    static_cast<unsigned long long>(st.attempts),
                    static_cast<unsigned long long>(st.retries),
                    static_cast<unsigned long long>(st.faults),
                    static_cast<unsigned long long>(st.timeouts),
                    static_cast<unsigned long long>(st.discarded),
                    outcome.fellBack ? " (fell back to CSR default)" : "");
    }
    if (backend_set && backend_kind == KernelBackendKind::Compiled) {
        CompiledBackendStats st = compiledBackend().stats();
        std::printf("compiled backend: %llu compile(s), %llu cache hit(s), "
                    "%llu fallback(s)\n",
                    static_cast<unsigned long long>(st.compiles),
                    static_cast<unsigned long long>(st.cacheHits),
                    static_cast<unsigned long long>(st.fallbacks));
    }
    if (!emit_dir.empty())
        emitSourcesTo(emit_dir, outcome.best, shape);
    std::printf("\n--- generated C (TACO-style) ---\n%s",
                emitC(outcome.best, shape).c_str());
    if (!trace_path.empty()) {
        trace::writeChromeTrace(trace_path);
        std::printf("\nwrote Chrome trace to %s (chrome://tracing)\n",
                    trace_path.c_str());
    }
    if (!metrics_path.empty()) {
        metrics::writeMetricsJson(metrics_path);
        std::printf("wrote metrics to %s\n", metrics_path.c_str());
    }
    return 0;
}

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
