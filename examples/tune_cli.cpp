/**
 * @file
 * Command-line tuner: point it at a MatrixMarket file (or let it generate
 * a demo matrix), pick an algorithm, and get back the co-optimized format
 * + schedule, the TACO-style C code implementing it, and the expected
 * speedup on the modelled machine.
 *
 * Usage: example_tune_cli [spmv|spmm|sddmm] [matrix.mtx]
 */
#include <cstdio>
#include <cstring>

#include "codegen/emit.hpp"
#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "tensor/mmio.hpp"
#include "util/logging.hpp"

using namespace waco;

int
main(int argc, char** argv)
{
    setLogLevel(LogLevel::Warn);
    Algorithm alg = Algorithm::SpMM;
    if (argc > 1) {
        if (!std::strcmp(argv[1], "spmv"))
            alg = Algorithm::SpMV;
        else if (!std::strcmp(argv[1], "spmm"))
            alg = Algorithm::SpMM;
        else if (!std::strcmp(argv[1], "sddmm"))
            alg = Algorithm::SDDMM;
        else {
            std::fprintf(stderr,
                         "usage: %s [spmv|spmm|sddmm] [matrix.mtx]\n",
                         argv[0]);
            return 2;
        }
    }
    Rng rng(77);
    SparseMatrix m = argc > 2
        ? readMatrixMarketFile(argv[2])
        : genPowerLawRows(4096, 4096, 60000, 0.9, rng, false);
    std::printf("%s on '%s' (%u x %u, %llu nnz)\n",
                algorithmName(alg).c_str(), m.name().c_str(), m.rows(),
                m.cols(), static_cast<unsigned long long>(m.nnz()));

    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 6;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 15;
    opt.train.epochs = 5;
    WacoTuner tuner(alg, MachineConfig::intel24(), opt);
    CorpusOptions copt;
    copt.count = 10;
    copt.minDim = 1024;
    copt.maxDim = 8192;
    copt.minNnz = 4000;
    copt.maxNnz = 60000;
    std::printf("training the cost model on a synthetic corpus...\n");
    tuner.train(makeCorpus(copt, 78));

    auto outcome = tuner.tune(m);
    auto shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
    auto fixed = tuner.oracle().measure(m, shape, defaultSchedule(shape));
    std::printf("\n--- chosen configuration ---\n%s",
                outcome.best.describe().c_str());
    std::printf("expected: %.3f ms vs CSR default %.3f ms (%.2fx)\n",
                outcome.bestMeasured.seconds * 1e3, fixed.seconds * 1e3,
                fixed.seconds / outcome.bestMeasured.seconds);
    std::printf("\n--- generated C (TACO-style) ---\n%s",
                emitC(outcome.best, shape).c_str());
    return 0;
}
