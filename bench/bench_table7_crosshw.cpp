/**
 * @file
 * Reproduces Table 7: hardware generalization. SpMM cost models are
 * trained against the two machine models (Intel/icc-style and AMD/gcc-
 * style) and each is used to tune for both machines; the chosen top-k is
 * re-measured on the *deployment* machine (the paper's protocol).
 *
 * Expected shape: the diagonal (train == test) wins, but the off-diagonal
 * models still beat Fixed CSR — general optimization patterns transfer.
 */
#include <cstdio>

#include "common.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Table 7", "SpMM geomean speedup over FixedCSR with cost "
                           "models trained on one machine, tested on both");

    auto intel = MachineConfig::intel24();
    auto amd = MachineConfig::amd8();
    auto tuner_intel = makeTrainedTuner(Algorithm::SpMM, intel);
    auto tuner_amd = makeTrainedTuner(Algorithm::SpMM, amd);
    RuntimeOracle oracle_intel(intel), oracle_amd(amd);
    auto tests = testMatrices(20);

    // speedup[test][train]
    double speedup[2][2] = {{0, 0}, {0, 0}};
    for (int test = 0; test < 2; ++test) {
        const RuntimeOracle& test_oracle = test == 0 ? oracle_intel
                                                     : oracle_amd;
        for (int train = 0; train < 2; ++train) {
            WacoTuner& tuner = train == 0 ? *tuner_intel : *tuner_amd;
            std::vector<double> s;
            for (const auto& m : tests) {
                auto shape = ProblemShape::forMatrix(Algorithm::SpMM,
                                                     m.rows(), m.cols());
                // ANNS under the *training* machine's model, then
                // re-measure its top-k on the *test* machine.
                auto outcome = tuner.tune(m);
                double best = std::numeric_limits<double>::infinity();
                for (const auto& cand : outcome.topK) {
                    auto r = test_oracle.measure(m, shape, cand);
                    if (r.valid)
                        best = std::min(best, r.seconds);
                }
                auto fixed = test_oracle.measure(m, shape,
                                                 defaultSchedule(shape));
                if (std::isfinite(best) && fixed.valid)
                    s.push_back(fixed.seconds / best);
            }
            speedup[test][train] = geomean(s);
        }
    }

    printRow({"", "Trained on Intel", "Trained on AMD"}, {20, 18, 16});
    printRow({"Tested on Intel", speedupCell(speedup[0][0]),
              speedupCell(speedup[0][1])},
             {20, 18, 16});
    printRow({"Tested on AMD", speedupCell(speedup[1][0]),
              speedupCell(speedup[1][1])},
             {20, 18, 16});
    std::printf("\n(Paper: 1.26/1.12 over 1.08/1.21 — diagonal best, "
                "off-diagonal still > 1.0x.)\n");
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
