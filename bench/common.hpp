/**
 * @file
 * Shared infrastructure for the table/figure reproduction binaries.
 *
 * Each bench binary regenerates one table or figure from the paper and
 * prints it in a fixed-width layout resembling the original. Trained cost
 * models are cached on disk under ./waco_model_cache so that running all
 * benches back-to-back trains each (algorithm, machine) model only once —
 * datasets are rebuilt deterministically from seeds, so the KNN graph is
 * identical across runs.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "core/dataset_io.hpp"
#include "core/waco_tuner.hpp"
#include "data/generators.hpp"

namespace waco::bench {

/**
 * Scan argv for `--trace-out FILE` / `--metrics-out FILE`, enable the
 * corresponding observability subsystem, and remember each path. The
 * consumed flags are compacted out of argv; returns the new argc, so
 * benches can keep their own positional parsing unchanged.
 */
int parseObservabilityFlags(int argc, char** argv);

/** Write the trace/metrics files requested by parseObservabilityFlags. */
void writeObservabilityOutputs();

/** Print a banner naming the table/figure being reproduced. */
void printHeader(const std::string& experiment_id, const std::string& title);

/** Print one fixed-width table row. */
void printRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);

/** Format a double as "1.23x". */
std::string speedupCell(double x);

/** Format a double with @p digits decimals. */
std::string numCell(double x, int digits = 3);

/** Format seconds in engineering units ("1.23ms"). */
std::string timeCell(double seconds);

/** Scaled-down paper configuration used by every bench (documented in
 *  EXPERIMENTS.md): 8-layer 16-channel WACONet, 64-d features. */
WacoOptions benchOptions();

/** Training corpus shared by all 2D benches (seeded, deterministic). */
std::vector<SparseMatrix> trainingCorpus();

/** Held-out 2D test matrices ("726 SuiteSparse matrices" stand-in). */
std::vector<SparseMatrix> testMatrices(u32 count = 40, u64 seed = 900);

/** Training / test corpora for MTTKRP. */
std::vector<Sparse3Tensor> trainingCorpus3d();
std::vector<Sparse3Tensor> testTensors(u32 count = 12, u64 seed = 910);

/**
 * Build (or load from cache) a trained WacoTuner for an algorithm+machine.
 * The on-disk cache stores only model parameters; the dataset and KNN graph
 * are rebuilt deterministically.
 */
std::unique_ptr<WacoTuner> makeTrainedTuner(
    Algorithm alg, const MachineConfig& machine,
    const std::string& cache_dir = "waco_model_cache");

/** Per-matrix result of one method for the comparison benches. */
struct MethodTimes
{
    std::string matrix;
    double waco = 0.0;
    double mkl = 0.0;        ///< 0 when unsupported.
    double bestformat = 0.0;
    double fixed = 0.0;
    double aspt = 0.0;       ///< 0 when unsupported.
};

/** Run WACO + all applicable baselines over a 2D test set. */
std::vector<MethodTimes> runComparison2d(Algorithm alg, WacoTuner& tuner,
                                         const std::vector<SparseMatrix>& tests);

/** Run WACO + applicable baselines (BestFormat excluded) over tensors. */
std::vector<MethodTimes> runComparison3d(WacoTuner& tuner,
                                         const std::vector<Sparse3Tensor>& tests);

/** Geomean of baseline/waco over matrices where both are valid. */
double geomeanSpeedup(const std::vector<MethodTimes>& rows,
                      double MethodTimes::*baseline);

} // namespace waco::bench
