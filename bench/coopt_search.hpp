/**
 * @file
 * Restricted-space auto-tuning used by the motivation experiments
 * (Tables 1 and 2): format-only (F.), schedule-only (S.) and joint (F.+S.)
 * tuning, implemented as random sampling plus hill climbing where every
 * candidate is projected back into the restricted subspace, exactly
 * matching the paper's definitions:
 *   F.  — tune the format; keep the iteration order concordant with it.
 *   S.  — tune the schedule; keep the format fixed to CSR.
 *   F+S — co-optimize both.
 */
#pragma once

#include <functional>

#include "analysis/schedule_verifier.hpp"
#include "core/waco_tuner.hpp"
#include "data/generators.hpp"

namespace waco::bench {

/** Tuning subspace selector. */
enum class TuneSpace { FormatOnly, ScheduleOnly, Joint };

/** Rebuild the compute schedule to be concordant with the format half:
 *  sparse levels in storage order, dense loops innermost, outermost
 *  non-reduction loop parallelized. */
inline SuperSchedule
makeConcordant(SuperSchedule s, const ProblemShape& shape)
{
    const auto& info = algorithmInfo(s.alg);
    std::vector<u32> lo = s.sparseLevelOrder;
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        if (info.sparseDim[idx] < 0) {
            lo.push_back(outerSlot(idx));
            lo.push_back(innerSlot(idx));
        }
    }
    s.loopOrder = lo;
    for (u32 slot : lo) {
        if (!info.isReduction[slotIndex(slot)] && !slotDegenerate(s, slot)) {
            s.parallelSlot = slot;
            break;
        }
    }
    analysis::verifySchedule(s, shape).throwIfErrors("makeConcordant");
    return s;
}

/** Project a candidate into the requested tuning subspace. */
inline SuperSchedule
projectInto(SuperSchedule s, TuneSpace space, const ProblemShape& shape)
{
    const auto& info = algorithmInfo(s.alg);
    switch (space) {
      case TuneSpace::Joint:
        return s;
      case TuneSpace::FormatOnly: {
        // Keep the format half; default chunk/threads; concordant loops.
        auto def = defaultSchedule(shape);
        s.numThreads = def.numThreads;
        s.ompChunk = def.ompChunk;
        // Dense-only splits are a schedule concern: reset them.
        for (u32 idx = 0; idx < info.numIndices; ++idx) {
            if (info.sparseDim[idx] < 0)
                s.splits[idx] = 1;
        }
        return makeConcordant(std::move(s), shape);
      }
      case TuneSpace::ScheduleOnly: {
        // Pin the format to CSR/CSF: unsplit sparse dims, default order.
        auto def = defaultSchedule(shape);
        for (u32 idx = 0; idx < info.numIndices; ++idx) {
            if (info.sparseDim[idx] >= 0)
                s.splits[idx] = 1;
        }
        s.sparseLevelOrder = def.sparseLevelOrder;
        s.sparseLevelFormats = def.sparseLevelFormats;
        s.denseRowMajor = def.denseRowMajor;
        analysis::verifySchedule(s, shape).throwIfErrors("projectInto");
        return s;
      }
    }
    panic("unreachable tune space");
}

/** Best schedule found by projected random search + hill climbing. */
struct CooptResult
{
    SuperSchedule schedule;
    Measurement measured;
};

inline CooptResult
tuneInSpace(const RuntimeOracle& oracle, const SparseMatrix& m,
            const ProblemShape& shape, TuneSpace space, u32 trials, u64 seed,
            const std::vector<SuperSchedule>& warm_starts = {})
{
    Rng rng(seed);
    SuperScheduleSpace full(shape.alg, shape);
    CooptResult best;
    best.schedule = defaultSchedule(shape);
    best.measured = oracle.measure(m, shape, best.schedule);

    auto consider = [&](const SuperSchedule& cand) {
        auto r = oracle.measure(m, shape, cand);
        if (r.valid && r.seconds < best.measured.seconds) {
            best.schedule = cand;
            best.measured = r;
        }
    };

    if (space == TuneSpace::FormatOnly || space == TuneSpace::Joint) {
        // Seed with the well-known format family (CSR/CSC/BCSR/UCU/UUC) —
        // random sampling alone is unlikely to hit an exact blocked
        // configuration, whereas any practical format tuner knows these.
        BestFormat known(oracle);
        for (const auto& cand : known.candidates(shape))
            consider(projectInto(cand, space, shape));
    }
    if (space == TuneSpace::Joint && warm_starts.empty()) {
        // Standalone joint tuning subsumes both restricted spaces: explore
        // each as a warm start before refining in the full space.
        consider(tuneInSpace(oracle, m, shape, TuneSpace::FormatOnly,
                             trials / 2, seed + 11)
                     .schedule);
        consider(tuneInSpace(oracle, m, shape, TuneSpace::ScheduleOnly,
                             trials / 2, seed + 13)
                     .schedule);
    }
    for (const auto& w : warm_starts)
        consider(projectInto(w, space, shape));

    u32 explore = trials / 2;
    for (u32 t = 0; t < trials; ++t) {
        SuperSchedule cand = t < explore
            ? projectInto(full.sample(rng), space, shape)
            : projectInto(full.mutate(best.schedule, rng), space, shape);
        consider(cand);
    }
    return best;
}

/** The three motivation matrices of Figure 2 (stand-ins). */
inline std::vector<SparseMatrix>
motivationMatrices()
{
    return {pliLike(), tsopfLike(), sparsineLike()};
}

} // namespace waco::bench
