/**
 * @file
 * Tuning-as-a-service throughput and tail latency: multi-threaded clients
 * firing a repeat-heavy request mix (cache hits), a slice of tight
 * deadlines (degradation), and unconstrained full searches at a
 * TunerService, reporting requests/sec, p50/p99 latency, the shed rate,
 * and the degradation-rung breakdown. Emits BENCH_server.json.
 *
 * `--smoke` shrinks every size for the tier-1 ctest run and hard-fails
 * (exit 1) when any request comes back Failed or un-typed — the service's
 * "typed response, never garbage" contract is checked here too, not only
 * in the unit tests.
 */
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "codegen/kernel_backend.hpp"
#include "common.hpp"
#include "perfmodel/wallclock_backend.hpp"
#include "service/tuner_service.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;
using namespace waco::service;

int
main(int argc, char** argv)
{
    argc = parseObservabilityFlags(argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

    const u32 threads = smoke ? 3 : 4;
    const u32 per_thread = smoke ? 20 : 150;
    const u32 pool_size = smoke ? 4 : 12;
    const u32 total = threads * per_thread;

    printHeader("server_throughput",
                "Tuner service: throughput, tail latency, degradation mix");

    setLogLevel(LogLevel::Off);
    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 4;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = smoke ? 8 : 16;
    opt.train.epochs = smoke ? 3 : 5;
    opt.train.batchSchedules = 8;
    opt.topK = smoke ? 4 : 6;
    opt.efSearch = smoke ? 12 : 24;
    WacoTuner tuner(Algorithm::SpMV, MachineConfig::intel24(), opt);
    CorpusOptions copt;
    copt.count = smoke ? 6 : 10;
    copt.minDim = 128;
    copt.maxDim = 512;
    copt.minNnz = 500;
    copt.maxNnz = 2000;
    tuner.train(makeCorpus(copt, 141));
    setLogLevel(LogLevel::Info);

    std::vector<SparseMatrix> pool;
    for (u64 s = 0; s < pool_size; ++s) {
        Rng rng(700 + s);
        pool.push_back(genUniform(256, 256, 1200, rng));
    }

    ServiceConfig cfg;
    cfg.maxQueue = 32;
    cfg.maxInflightPerTenant = 64;
    TunerService server(tuner, cfg);

    // The request mix: mostly unconstrained (repeats become cache hits),
    // one slice under a deadline tight enough to truncate some searches.
    std::vector<std::vector<TuneResponse>> responses(threads);
    Timer wall;
    std::vector<std::thread> clients;
    for (u32 c = 0; c < threads; ++c) {
        clients.emplace_back([&, c] {
            Rng rng(4000 + c);
            std::string tenant = "client-" + std::to_string(c);
            for (u32 i = 0; i < per_thread; ++i) {
                u32 mi = static_cast<u32>(
                    rng.uniformInt(0, static_cast<i64>(pool.size()) - 1));
                double dl = rng.bernoulli(0.2)
                                ? 0.002
                                : std::numeric_limits<double>::infinity();
                responses[c].push_back(
                    server.submit(pool[mi], tenant, dl)->wait());
            }
        });
    }
    for (auto& c : clients)
        c.join();
    double seconds = wall.seconds();

    ServiceStats stats = server.stats();
    u64 failed = 0, untyped = 0;
    for (const auto& per_client : responses) {
        for (const TuneResponse& r : per_client) {
            failed += r.status == ServiceStatus::Failed;
            bool typed = r.status == ServiceStatus::Ok ||
                         r.status == ServiceStatus::Shed ||
                         r.status == ServiceStatus::Degraded ||
                         r.status == ServiceStatus::Cancelled ||
                         r.status == ServiceStatus::DeadlineExceeded;
            untyped += !typed;
            if (r.status != ServiceStatus::Shed && r.scheduleKey.empty())
                ++untyped;
        }
    }
    double rps = seconds > 0 ? static_cast<double>(total) / seconds : 0.0;
    double shed_rate =
        stats.submitted ? static_cast<double>(stats.shed) /
                              static_cast<double>(stats.submitted)
                        : 0.0;

    const std::vector<int> widths = {24, 14};
    printRow({"requests", std::to_string(total)}, widths);
    printRow({"wall seconds", numCell(seconds, 3)}, widths);
    printRow({"throughput req/s", numCell(rps, 1)}, widths);
    printRow({"latency p50 ms", numCell(stats.latencyP50 * 1e3, 3)}, widths);
    printRow({"latency p99 ms", numCell(stats.latencyP99 * 1e3, 3)}, widths);
    printRow({"shed rate", numCell(shed_rate, 4)}, widths);
    printRow({"cache hits", std::to_string(stats.cacheHits)}, widths);
    for (u32 r = 0; r < 4; ++r)
        printRow({std::string("rung ") +
                      rungName(static_cast<DegradationRung>(r)),
                  std::to_string(stats.rungCounts[r])},
                 widths);
    printRow({"failed", std::to_string(failed)}, widths);

    // ---- warm-cache rung: compiled kernels memoized across services ----
    // Requests measured on real wall time through the JIT backend. The
    // first (cold) service pays the kernel compiles; a SECOND service on
    // the same request fingerprints re-searches and re-measures from a
    // cold result cache, yet must perform ZERO compiler invocations —
    // every kernel is a KernelCache hit. Hard exit-1 contract.
    bool warm_ran = false;
    u64 cold_compiles = 0, warm_recompiles = 0, warm_fallbacks = 0;
    if (compiledBackend().compilerAvailable()) {
        warm_ran = true;
        metrics::setEnabled(true);
        WallclockMeasurer wallclock(compiledBackend(), {});
        tuner.setMeasurementBackend(wallclock);
        auto serve_pool_once = [&] {
            TunerService jit_server(tuner, cfg);
            for (const auto& mtx : pool)
                jit_server.submit(mtx)->wait();
        };
        u64 c0 = compiledBackend().stats().compiles;
        serve_pool_once();
        u64 c1 = compiledBackend().stats().compiles;
        u64 f1 = compiledBackend().stats().fallbacks;
        serve_pool_once();
        cold_compiles = c1 - c0;
        warm_recompiles = compiledBackend().stats().compiles - c1;
        warm_fallbacks = compiledBackend().stats().fallbacks - f1;
        printRow({"cold compiles", std::to_string(cold_compiles)}, widths);
        printRow({"warm recompiles", std::to_string(warm_recompiles)},
                 widths);
    } else {
        printRow({"warm-cache rung", "skipped (no cc)"}, widths);
    }

    // ---- BENCH_server.json --------------------------------------------
    if (FILE* f = std::fopen("BENCH_server.json", "w")) {
        std::fprintf(f, "{\n  \"bench\": \"server_throughput\",\n");
        std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(f, "  \"requests\": %u,\n", total);
        std::fprintf(f, "  \"client_threads\": %u,\n", threads);
        std::fprintf(f, "  \"wall_seconds\": %.6f,\n", seconds);
        std::fprintf(f, "  \"throughput_rps\": %.3f,\n", rps);
        std::fprintf(f, "  \"latency_p50_ms\": %.6f,\n",
                     stats.latencyP50 * 1e3);
        std::fprintf(f, "  \"latency_p99_ms\": %.6f,\n",
                     stats.latencyP99 * 1e3);
        std::fprintf(f, "  \"shed_rate\": %.6f,\n", shed_rate);
        std::fprintf(f, "  \"failed\": %llu,\n",
                     static_cast<unsigned long long>(failed));
        std::fprintf(f, "  \"warm_cache_rung\": %s,\n",
                     warm_ran ? "true" : "false");
        std::fprintf(f, "  \"cold_compiles\": %llu,\n",
                     static_cast<unsigned long long>(cold_compiles));
        std::fprintf(f, "  \"warm_recompiles\": %llu,\n",
                     static_cast<unsigned long long>(warm_recompiles));
        std::fprintf(f, "  \"service_stats\": %s}\n",
                     stats.toJson().c_str());
        std::fclose(f);
        std::printf("\nwrote BENCH_server.json\n");
    }
    writeObservabilityOutputs();

    // Hard contract checks (tier-1 smoke gate): every response is typed,
    // nothing Failed, and the repeat-heavy mix actually hit the cache.
    if (failed > 0 || untyped > 0) {
        std::fprintf(stderr,
                     "FAIL: %llu failed, %llu untyped responses\n",
                     static_cast<unsigned long long>(failed),
                     static_cast<unsigned long long>(untyped));
        return 1;
    }
    if (stats.cacheHits == 0) {
        std::fprintf(stderr, "FAIL: repeat-heavy mix produced 0 cache hits\n");
        return 1;
    }
    if (stats.completed + stats.shed != stats.submitted) {
        std::fprintf(stderr, "FAIL: request accounting does not balance\n");
        return 1;
    }
    if (warm_ran && (warm_recompiles != 0 || warm_fallbacks != 0)) {
        std::fprintf(stderr,
                     "FAIL: warm-cache rung recompiled %llu kernel(s) / "
                     "fell back %llu time(s) on repeat fingerprints\n",
                     static_cast<unsigned long long>(warm_recompiles),
                     static_cast<unsigned long long>(warm_fallbacks));
        return 1;
    }
    if (warm_ran && cold_compiles == 0) {
        std::fprintf(stderr,
                     "FAIL: warm-cache rung performed no compiles at all "
                     "(JIT backend was not exercised)\n");
        return 1;
    }
    return 0;
}
