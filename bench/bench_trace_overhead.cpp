/**
 * @file
 * Observability overhead: cost of the tracing/metrics layer when it is
 * compiled in but runtime-disabled (the shipping default). Two twin
 * kernels run the same dot-product workload; one is salted with
 * WACO_SPAN / WACO_COUNT / WACO_HIST at the same density as the
 * instrumented pipeline (one span plus a few counters per ~16K-element
 * kernel call), the other is bare. With observability disabled, the
 * instrumented twin must stay within 2% of the bare one — the zero-cost
 * contract from DESIGN.md §8. For reference the enabled path is timed
 * too (expected to cost real time; no assertion).
 *
 * `--smoke` shrinks repetitions for the tier-1 ctest run but keeps the
 * 2% hard failure (exit 1).
 */
#include <cstdio>
#include <cstring>
#include <vector>

#include "common.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

using namespace waco;
using namespace waco::bench;

namespace {

constexpr u32 kVecLen = 16 * 1024;

/**
 * The workload both twins call: one dot product over 16K floats, seeded
 * with @p salt so repeated calls cannot be common-subexpression'd away.
 * Shared between the twins on purpose — the pipeline instruments phase
 * boundaries *around* work, so the hot loop's codegen must be identical
 * and only the macro sites differ. (Putting the macros in the same
 * function as the loop measures a register-allocation artifact instead:
 * the live Span forces the accumulator into memory.)
 */
[[gnu::noinline]] double
work(const float* a, const float* b, u32 salt)
{
    double acc = salt;
    for (u32 i = 0; i < kVecLen; ++i)
        acc += static_cast<double>(a[i]) * b[i];
    return acc;
}

/** Bare call: no observability. */
[[gnu::noinline]] double
kernelBare(const std::vector<float>& a, const std::vector<float>& b, u32 salt)
{
    return work(a.data(), b.data(), salt);
}

/** Same call wrapped with observability at pipeline density. */
[[gnu::noinline]] double
kernelInstrumented(const std::vector<float>& a, const std::vector<float>& b,
                   u32 salt)
{
    WACO_SPAN("overhead.kernel");
    WACO_COUNT("overhead.calls", 1);
    double acc = work(a.data(), b.data(), salt);
    WACO_HIST("overhead.result_ns", static_cast<u64>(acc < 0 ? 0 : acc));
    WACO_COUNT("overhead.elements", kVecLen);
    return acc;
}

/**
 * Best-of-reps seconds for @p calls invocations of @p fn. Min over
 * repetitions discards scheduler noise, which a <2% assertion cannot
 * tolerate in a mean.
 */
template <typename Fn>
double
bestSeconds(u32 reps, u32 calls, const std::vector<float>& a,
            const std::vector<float>& b, Fn&& fn, double& sink)
{
    double best = 1e30;
    for (u32 r = 0; r < reps; ++r) {
        Timer t;
        for (u32 c = 0; c < calls; ++c)
            sink += fn(a, b, c);
        best = std::min(best, t.seconds());
    }
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    argc = parseObservabilityFlags(argc, argv);
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    Timer total;
    printHeader("Observability overhead",
                smoke ? "Disabled-path tax (smoke reps)"
                      : "Disabled-path tax of tracing + metrics");

    std::vector<float> a(kVecLen), b(kVecLen);
    for (u32 i = 0; i < kVecLen; ++i) {
        a[i] = 1.0f + 1e-4f * static_cast<float>(i % 997);
        b[i] = 1.0f - 1e-4f * static_cast<float>(i % 991);
    }

    const u32 kReps = smoke ? 15u : 40u;
    const u32 kCalls = smoke ? 400u : 2000u;
    double sink = 0.0;

    // Warm-up: fault in code paths and (for the enabled pass later) the
    // thread-local shard so allocation never lands inside a timed region.
    sink += kernelBare(a, b, 0) + kernelInstrumented(a, b, 0);

    trace::setEnabled(false);
    metrics::setEnabled(false);
    double bare = bestSeconds(kReps, kCalls, a, b, kernelBare, sink);
    double disabled = bestSeconds(kReps, kCalls, a, b, kernelInstrumented,
                                  sink);

    trace::setEnabled(true);
    metrics::setEnabled(true);
    sink += kernelInstrumented(a, b, 0);
    double enabled = bestSeconds(kReps, kCalls, a, b, kernelInstrumented,
                                 sink);
    trace::setEnabled(false);
    metrics::setEnabled(false);
    u64 spans = trace::snapshot().size();
    trace::clear();

    double disabled_ratio = disabled / bare;
    double enabled_ratio = enabled / bare;
    printRow({"Variant", "Best time", "vs bare"}, {22, 14, 10});
    printRow({"bare kernel", timeCell(bare), "1.00x"}, {22, 14, 10});
    printRow({"instrumented, off", timeCell(disabled),
              speedupCell(disabled_ratio)},
             {22, 14, 10});
    printRow({"instrumented, on", timeCell(enabled),
              speedupCell(enabled_ratio)},
             {22, 14, 10});
    std::printf("(enabled pass recorded %llu spans; checksum %.3g)\n",
                static_cast<unsigned long long>(spans), sink);

    if (FILE* f = std::fopen("BENCH_trace_overhead.json", "w")) {
        std::fprintf(f,
                     "{\n  \"bench\": \"trace_overhead\",\n"
                     "  \"smoke\": %s,\n"
                     "  \"bare_sec\": %.9f,\n"
                     "  \"disabled_sec\": %.9f,\n"
                     "  \"enabled_sec\": %.9f,\n"
                     "  \"disabled_overhead\": %.6f,\n"
                     "  \"enabled_overhead\": %.6f\n}\n",
                     smoke ? "true" : "false", bare, disabled, enabled,
                     disabled_ratio - 1.0, enabled_ratio - 1.0);
        std::fclose(f);
        std::printf("wrote BENCH_trace_overhead.json\n");
    }

    writeObservabilityOutputs();
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    if (disabled_ratio >= 1.02) {
        std::fprintf(stderr,
                     "FAIL: disabled observability costs %.2f%% (budget 2%%)\n",
                     (disabled_ratio - 1.0) * 100.0);
        return 1;
    }
    return 0;
}
