#include "common.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace waco::bench {

namespace {

std::string g_trace_path;
std::string g_metrics_path;

} // namespace

int
parseObservabilityFlags(int argc, char** argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string* dst = nullptr;
        if (!std::strcmp(argv[i], "--trace-out"))
            dst = &g_trace_path;
        else if (!std::strcmp(argv[i], "--metrics-out"))
            dst = &g_metrics_path;
        if (dst && i + 1 < argc) {
            *dst = argv[++i];
            continue;
        }
        argv[out++] = argv[i];
    }
    if (!g_trace_path.empty())
        trace::setEnabled(true);
    if (!g_metrics_path.empty())
        metrics::setEnabled(true);
    for (int i = out; i < argc; ++i)
        argv[i] = nullptr;
    return out;
}

void
writeObservabilityOutputs()
{
    if (!g_trace_path.empty()) {
        trace::writeChromeTrace(g_trace_path);
        std::printf("wrote Chrome trace to %s\n", g_trace_path.c_str());
    }
    if (!g_metrics_path.empty()) {
        metrics::writeMetricsJson(g_metrics_path);
        std::printf("wrote metrics to %s\n", g_metrics_path.c_str());
    }
}

void
printHeader(const std::string& experiment_id, const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
    std::printf("================================================================\n");
}

void
printRow(const std::vector<std::string>& cells, const std::vector<int>& widths)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        int w = i < widths.size() ? widths[i] : 12;
        std::printf("%-*s", w, cells[i].c_str());
    }
    std::printf("\n");
}

std::string
speedupCell(double x)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", x);
    return buf;
}

std::string
numCell(double x, int digits)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
    return buf;
}

std::string
timeCell(double seconds)
{
    char buf[32];
    if (seconds >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
    else if (seconds >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
    return buf;
}

WacoOptions
benchOptions()
{
    // Paper scale: 14 layers / 32 channels / 128-d features, 100 schedules
    // per matrix, 70 epochs. Scaled for one CPU core (see EXPERIMENTS.md).
    WacoOptions opt;
    opt.extractorConfig.channels = 16;
    opt.extractorConfig.numLayers = 8;
    opt.extractorConfig.featureDim = 64;
    opt.schedulesPerMatrix = 30;
    opt.train.epochs = 8;
    opt.train.batchSchedules = 14;
    opt.topK = 10;
    opt.efSearch = 32;
    opt.seed = 424242;
    return opt;
}

namespace {

/** A few LLC-stressing matrices in the same families as the motivation
 *  set, so corpora cover the cache-sensitive regime (the paper's matrices
 *  go up to 10M nonzeros; ours are scaled to the 1-core budget). */
std::vector<SparseMatrix>
largeMatrices(u64 seed, u32 count)
{
    Rng rng(seed);
    std::vector<SparseMatrix> out;
    for (u32 n = 0; n < count; ++n) {
        SparseMatrix m;
        switch (n % 4) {
          case 0:
            // sparsine-ish: many columns, dense-ish rows, so the dense
            // operand overflows the LLC and column tiling pays.
            m = genUniform(8192, 65536, 400000, rng);
            break;
          case 1:
            // TSOPF-ish: dense 16x16 blocks over a column space wide
            // enough that the dense operand misses the LLC.
            m = genDenseBlocks(16384, 131072, 16, 4000, 0.95, rng);
            break;
          case 2:
            m = genPowerLawRows(65536, 65536, 250000, 0.8, rng, false);
            break;
          default:
            m = genHotColumns(131072, 131072, 250000, 512, rng);
            break;
        }
        m.setName(m.name() + "_big" + std::to_string(n));
        out.push_back(std::move(m));
    }
    return out;
}

} // namespace

std::vector<SparseMatrix>
trainingCorpus()
{
    CorpusOptions opt;
    opt.count = 20;
    opt.minDim = 512;
    opt.maxDim = 4096;
    opt.minNnz = 2000;
    opt.maxNnz = 20000;
    auto corpus = makeCorpus(opt, 801);
    for (auto& m : largeMatrices(803, 4))
        corpus.push_back(std::move(m));
    return corpus;
}

std::vector<SparseMatrix>
testMatrices(u32 count, u64 seed)
{
    CorpusOptions opt;
    opt.count = count > 8 ? count - 8 : count;
    opt.minDim = 512;
    opt.maxDim = 6144;
    opt.minNnz = 2000;
    opt.maxNnz = 30000;
    auto tests = makeCorpus(opt, seed);
    if (count > 8) {
        for (auto& m : largeMatrices(seed + 1, 8))
            tests.push_back(std::move(m));
    }
    return tests;
}

std::vector<Sparse3Tensor>
trainingCorpus3d()
{
    CorpusOptions opt;
    opt.count = 12;
    opt.minDim = 256;
    opt.maxDim = 1024;
    opt.minNnz = 2000;
    opt.maxNnz = 12000;
    return makeCorpus3d(opt, 802);
}

std::vector<Sparse3Tensor>
testTensors(u32 count, u64 seed)
{
    CorpusOptions opt;
    opt.count = count;
    opt.minDim = 256;
    opt.maxDim = 1024;
    opt.minNnz = 2000;
    opt.maxNnz = 16000;
    return makeCorpus3d(opt, seed);
}

std::unique_ptr<WacoTuner>
makeTrainedTuner(Algorithm alg, const MachineConfig& machine,
                 const std::string& cache_dir)
{
    auto opt = benchOptions();
    auto tuner = std::make_unique<WacoTuner>(alg, machine, opt);
    bool is3d = algorithmInfo(alg).sparseOrder == 3;

    std::filesystem::create_directories(cache_dir);
    std::string path = cache_dir + "/" + algorithmName(alg) + "_" +
                       machine.name + "_" + opt.extractor + ".bin";

    Timer timer;
    std::string ds_path = cache_dir + "/" + algorithmName(alg) + "_" +
                          machine.name + "_dataset.bin";
    CostDataset ds;
    bool loaded = false;
    if (std::filesystem::exists(ds_path)) {
        try {
            ds = loadDataset(ds_path);
            loaded = ds.alg == alg;
        } catch (const FatalError&) {
            loaded = false;
        }
    }
    if (!loaded) {
        ds = is3d ? buildDataset3d(alg, trainingCorpus3d(), tuner->oracle(),
                                   opt.schedulesPerMatrix, opt.seed)
                  : buildDataset(alg, trainingCorpus(), tuner->oracle(),
                                 opt.schedulesPerMatrix, opt.seed);
        saveDataset(ds, ds_path);
    }
    std::printf("[setup] %s dataset: %zu matrices, %zu schedules "
                "(%.1fs%s)\n",
                algorithmName(alg).c_str(), ds.entries.size(),
                ds.allSchedules().size(), timer.seconds(),
                loaded ? ", cached" : "");

    if (std::filesystem::exists(path)) {
        try {
            tuner->model().load(path);
            tuner->attachDataset(ds);
            std::printf("[setup] loaded cached %s model from %s\n",
                        algorithmName(alg).c_str(), path.c_str());
            return tuner;
        } catch (const FatalError& e) {
            std::printf("[setup] cache stale (%s); retraining\n", e.what());
        }
    }
    Timer train_timer;
    tuner->trainOnDataset(ds);
    std::printf("[setup] trained %s cost model in %.1fs\n",
                algorithmName(alg).c_str(), train_timer.seconds());
    tuner->model().save(path);
    return tuner;
}

std::vector<MethodTimes>
runComparison2d(Algorithm alg, WacoTuner& tuner,
                const std::vector<SparseMatrix>& tests)
{
    const RuntimeOracle& oracle = tuner.oracle();
    MklLike mkl(oracle);
    Aspt aspt(oracle);
    BestFormat bf(oracle);
    bf.train(alg, trainingCorpus());

    std::vector<MethodTimes> rows;
    for (const auto& m : tests) {
        MethodTimes row;
        row.matrix = m.name();
        row.waco = tuner.tune(m).bestMeasured.seconds;
        row.fixed = fixedCsr(oracle, m, alg).measured.seconds;
        row.bestformat = bf.tune(m).measured.seconds;
        if (mkl.supports(alg))
            row.mkl = mkl.tune(m, alg).measured.seconds;
        if (aspt.supports(alg))
            row.aspt = aspt.tune(m, alg).measured.seconds;
        rows.push_back(row);
    }
    return rows;
}

std::vector<MethodTimes>
runComparison3d(WacoTuner& tuner, const std::vector<Sparse3Tensor>& tests)
{
    const RuntimeOracle& oracle = tuner.oracle();
    BestFormat3d bf(oracle);
    bf.train(trainingCorpus3d());
    std::vector<MethodTimes> rows;
    for (const auto& t : tests) {
        MethodTimes row;
        row.matrix = t.name();
        row.waco = tuner.tune3d(t).bestMeasured.seconds;
        row.fixed = fixedCsf(oracle, t).measured.seconds;
        row.bestformat = bf.tune(t).measured.seconds;
        rows.push_back(row);
    }
    return rows;
}

double
geomeanSpeedup(const std::vector<MethodTimes>& rows,
               double MethodTimes::*baseline)
{
    std::vector<double> speedups;
    for (const auto& r : rows) {
        double b = r.*baseline;
        if (b > 0.0 && r.waco > 0.0)
            speedups.push_back(b / r.waco);
    }
    return speedups.empty() ? 0.0 : geomean(speedups);
}

} // namespace waco::bench
