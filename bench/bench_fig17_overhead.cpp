/**
 * @file
 * Reproduces Figure 17: tuning overhead vs achieved speedup for the three
 * auto-tuners (MKL inspector-executor, BestFormat, WACO), both measured in
 * units of one MKL-Naive kernel invocation. WACO pays the largest search
 * cost (feature extraction + ANNS + top-k re-measurement + format
 * conversion) for the largest speedups; MKL is cheap but shallow;
 * BestFormat sits between.
 */
#include <cstdio>

#include "common.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

namespace {

struct Point
{
    double overhead; ///< Tuning cost in MKL-naive invocations.
    double speedup;  ///< Per-call speedup over MKL-naive.
};

void
summarize(const std::string& label, const std::vector<Point>& pts)
{
    std::vector<double> ov, sp;
    for (const auto& p : pts) {
        ov.push_back(p.overhead);
        sp.push_back(p.speedup);
    }
    std::printf("  %-12s overhead median %8.0f invocations   speedup "
                "geomean %.2fx (max %.2fx)\n",
                label.c_str(), median(ov), geomean(sp),
                *std::max_element(sp.begin(), sp.end()));
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Figure 17", "Tuning overhead vs speedup relative to "
                             "MKL-Naive (per-algorithm summary)");

    for (Algorithm alg : {Algorithm::SpMV, Algorithm::SpMM}) {
        auto tuner = makeTrainedTuner(alg, MachineConfig::intel24());
        const RuntimeOracle& oracle = tuner->oracle();
        MklLike mkl(oracle);
        BestFormat bf(oracle);
        bf.train(alg, trainingCorpus());

        std::vector<Point> p_mkl, p_bf, p_waco;
        double breakeven_sum = 0.0;
        u32 breakeven_n = 0;
        for (const auto& m : testMatrices(16, 930)) {
            double naive = mkl.naive(m, alg).measured.seconds;
            if (naive <= 0.0)
                continue;

            auto rm = mkl.tune(m, alg);
            p_mkl.push_back({rm.tuningSeconds / naive,
                             naive / rm.measured.seconds});

            auto rb = bf.tune(m);
            p_bf.push_back({(rb.tuningSeconds + rb.convertSeconds) / naive,
                            naive / rb.measured.seconds});

            auto rw = tuner->tune(m);
            double w_overhead =
                (rw.tuningSeconds() + rw.convertSeconds) / naive;
            double w_speedup = naive / rw.bestMeasured.seconds;
            p_waco.push_back({w_overhead, w_speedup});
            if (w_speedup > 1.0) {
                // Invocations needed to amortize WACO's tuning cost.
                breakeven_sum += w_overhead /
                                 (1.0 - 1.0 / w_speedup);
                ++breakeven_n;
            }
        }
        std::printf("\n%s overhead and speedup (vs MKL-Naive):\n",
                    algorithmName(alg).c_str());
        summarize("MKL", p_mkl);
        summarize("BestFormat", p_bf);
        summarize("WACO", p_waco);
        if (breakeven_n) {
            std::printf("  WACO amortizes its tuning after ~%.0f "
                        "invocations on average (paper: 919 for SpMV, 101 "
                        "for SpMM).\n",
                        breakeven_sum / breakeven_n);
        }
    }
    std::printf("\n(Shape: MKL cheapest/shallowest; BestFormat mid; WACO "
                "pays the most search time for the best speedups.)\n");
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
