/**
 * @file
 * Google-benchmark microbenchmarks of the *real* execution engine (not the
 * machine model): wall-clock throughput of the CSR/CSF fast kernels and
 * the format-generic hierarchical kernels across formats. These numbers
 * are host-machine-dependent; they validate that the executor is a real,
 * runnable substrate rather than a paper construct.
 *
 * The `legacy` namespace below preserves the pre-LoopNest hand-written
 * kernels (callback-based traversal, spawn-and-join-per-call threading)
 * ONLY inside this benchmark target, so `_Old` / `_New` rows print the
 * old and new executors side by side: the generic LoopNest interpreter
 * must stay within a few percent of the hand-written traversals, and the
 * persistent-pool scheduled path must beat per-call thread spawning on
 * tuner-style repeated small invocations.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>

#include "codegen/kernel_backend.hpp"
#include "common.hpp"
#include "data/generators.hpp"
#include "exec/kernels.hpp"
#include "exec/scheduled.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

using namespace waco;

// Pre-refactor kernels, kept compiled here (and only here) as the baseline
// the generic executor is measured against. Deleted from the library.
namespace legacy {

DenseVector
spmvHier(const HierSparseTensor& a, const DenseVector& b)
{
    DenseVector c(a.descriptor().dims()[0], 0.0f);
    a.forEachStored([&](const std::array<u32, 3>& x, float v, bool ok) {
        if (ok)
            c[x[0]] += v * b[x[1]];
    });
    return c;
}

DenseMatrix
spmmHier(const HierSparseTensor& a, const DenseMatrix& b)
{
    DenseMatrix c(a.descriptor().dims()[0], b.cols(), Layout::RowMajor, 0.0f);
    const u64 jd = b.cols();
    a.forEachStored([&](const std::array<u32, 3>& x, float v, bool ok) {
        if (!ok)
            return;
        for (u64 j = 0; j < jd; ++j)
            c.at(x[0], j) += v * b.at(x[1], j);
    });
    return c;
}

/** The old spawn-and-join-per-call dynamic chunking (including its
 *  oversubscription: par.threads workers regardless of chunk count). */
template <typename Fn>
void
dynamicTopLevel(const HierSparseTensor& a, const ParallelConfig& par, Fn&& fn)
{
    u64 total = a.topLevelSize();
    u32 threads = std::max<u32>(1, par.threads);
    u64 chunk = std::max<u32>(1, par.chunk);
    if (threads == 1) {
        fn(0, total);
        return;
    }
    std::atomic<u64> next{0};
    auto worker = [&]() {
        for (;;) {
            u64 begin = next.fetch_add(chunk);
            if (begin >= total)
                return;
            fn(begin, std::min(total, begin + chunk));
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto& t : pool)
        t.join();
}

DenseVector
spmvScheduled(const HierSparseTensor& a, const DenseVector& b,
              const ParallelConfig& par)
{
    if (!parallelizableTopLevel(Algorithm::SpMV, a))
        return legacy::spmvHier(a, b);
    DenseVector c(a.descriptor().dims()[0], 0.0f);
    dynamicTopLevel(a, par, [&](u64 begin, u64 end) {
        a.forEachStoredInTopRange(
            begin, end, [&](const std::array<u32, 3>& x, float v, bool ok) {
                if (ok)
                    c[x[0]] += v * b[x[1]];
            });
    });
    return c;
}

DenseMatrix
spmmScheduled(const HierSparseTensor& a, const DenseMatrix& b,
              const ParallelConfig& par)
{
    if (!parallelizableTopLevel(Algorithm::SpMM, a))
        return legacy::spmmHier(a, b);
    DenseMatrix c(a.descriptor().dims()[0], b.cols(), Layout::RowMajor, 0.0f);
    const u64 jd = b.cols();
    dynamicTopLevel(a, par, [&](u64 begin, u64 end) {
        a.forEachStoredInTopRange(
            begin, end, [&](const std::array<u32, 3>& x, float v, bool ok) {
                if (!ok)
                    return;
                for (u64 j = 0; j < jd; ++j)
                    c.at(x[0], j) += v * b.at(x[1], j);
            });
    });
    return c;
}

} // namespace legacy

namespace {

SparseMatrix
benchMatrix()
{
    Rng rng(42);
    return genBanded(4096, 4096, 16, 0.5, rng);
}

FormatDescriptor
benchFormat(const SparseMatrix& m, i64 which)
{
    switch (which) {
      case 0: return FormatDescriptor::csr(m.rows(), m.cols());
      case 1: return FormatDescriptor::csc(m.rows(), m.cols());
      case 2: return FormatDescriptor::bcsr(m.rows(), m.cols(), 4, 4);
      default: return FormatDescriptor::ucu(m.rows(), m.cols(), 16);
    }
}

void
BM_SpmvCsr(benchmark::State& state)
{
    auto m = benchMatrix();
    Csr csr(m);
    DenseVector b(m.cols());
    Rng rng(1);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmvCsr(csr, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}

void
BM_SpmmCsr(benchmark::State& state)
{
    auto m = benchMatrix();
    Csr csr(m);
    DenseMatrix b(m.cols(), static_cast<u64>(state.range(0)));
    Rng rng(2);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmmCsr(csr, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz() * state.range(0));
}

void
BM_SpmvHierFormat(benchmark::State& state)
{
    auto m = benchMatrix();
    FormatDescriptor desc = [&] {
        switch (state.range(0)) {
          case 0: return FormatDescriptor::csr(m.rows(), m.cols());
          case 1: return FormatDescriptor::csc(m.rows(), m.cols());
          case 2: return FormatDescriptor::bcsr(m.rows(), m.cols(), 4, 4);
          default: return FormatDescriptor::ucu(m.rows(), m.cols(), 16);
        }
    }();
    auto t = HierSparseTensor::build(desc, m);
    DenseVector b(m.cols());
    Rng rng(3);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmvHier(t, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetLabel(desc.name());
    state.SetItemsProcessed(state.iterations() * t.storedValues());
}

/** Old hand-written callback traversal, per format (baseline). */
void
BM_SpmvHier_Old(benchmark::State& state)
{
    auto m = benchMatrix();
    auto desc = benchFormat(m, state.range(0));
    auto t = HierSparseTensor::build(desc, m);
    DenseVector b(m.cols());
    Rng rng(3);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = legacy::spmvHier(t, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetLabel(desc.name());
    state.SetItemsProcessed(state.iterations() * t.storedValues());
}

/** New generic LoopNest interpreter, same formats (must stay within ~5%). */
void
BM_SpmvHier_New(benchmark::State& state)
{
    auto m = benchMatrix();
    auto desc = benchFormat(m, state.range(0));
    auto t = HierSparseTensor::build(desc, m);
    DenseVector b(m.cols());
    Rng rng(3);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmvHier(t, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetLabel(desc.name());
    state.SetItemsProcessed(state.iterations() * t.storedValues());
}

void
BM_SpmmHier_Old(benchmark::State& state)
{
    auto m = benchMatrix();
    auto desc = benchFormat(m, state.range(0));
    auto t = HierSparseTensor::build(desc, m);
    DenseMatrix b(m.cols(), 64);
    Rng rng(5);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = legacy::spmmHier(t, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetLabel(desc.name());
    state.SetItemsProcessed(state.iterations() * t.storedValues() * 64);
}

void
BM_SpmmHier_New(benchmark::State& state)
{
    auto m = benchMatrix();
    auto desc = benchFormat(m, state.range(0));
    auto t = HierSparseTensor::build(desc, m);
    DenseMatrix b(m.cols(), 64);
    Rng rng(5);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmmHier(t, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetLabel(desc.name());
    state.SetItemsProcessed(state.iterations() * t.storedValues() * 64);
}

/** Parallel scheduled SpMV: spawn-and-join per call (old runtime). */
void
BM_SpmvScheduled_Old(benchmark::State& state)
{
    auto m = benchMatrix();
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    DenseVector b(m.cols());
    Rng rng(7);
    b.randomize(rng);
    ParallelConfig par{static_cast<u32>(state.range(0)), 64};
    for (auto _ : state) {
        auto c = legacy::spmvScheduled(t, b, par);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues());
}

/** Parallel scheduled SpMV: persistent thread pool (new runtime). */
void
BM_SpmvScheduled_New(benchmark::State& state)
{
    auto m = benchMatrix();
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    DenseVector b(m.cols());
    Rng rng(7);
    b.randomize(rng);
    ParallelConfig par{static_cast<u32>(state.range(0)), 64};
    for (auto _ : state) {
        auto c = spmvScheduled(t, b, par);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues());
}

/**
 * Tuner-style workload: thousands of parallel invocations on a *small*
 * kernel, where per-call thread spawn/join dominates. Each benchmark
 * iteration is one scheduled SpMM call on a 256x256 input with 4 threads —
 * the shape of the inner loop of corpus labeling and top-k remeasurement.
 */
void
BM_TunerRepeat_Old(benchmark::State& state)
{
    Rng rng(11);
    auto m = genBanded(256, 256, 8, 0.5, rng);
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    DenseMatrix b(m.cols(), 16);
    b.randomize(rng);
    ParallelConfig par{4, 16};
    for (auto _ : state) {
        auto c = legacy::spmmScheduled(t, b, par);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues() * 16);
}

void
BM_TunerRepeat_New(benchmark::State& state)
{
    Rng rng(11);
    auto m = genBanded(256, 256, 8, 0.5, rng);
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    DenseMatrix b(m.cols(), 16);
    b.randomize(rng);
    ParallelConfig par{4, 16};
    for (auto _ : state) {
        auto c = spmmScheduled(t, b, par);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues() * 16);
}

/**
 * Unfused SDDMM→SpMM: run SDDMM, materialize the intermediate sparse
 * product as a fresh CSR hierarchy, then run SpMM over it — the two-kernel
 * pipeline a user without the fused lowering would write.
 */
void
BM_FusedSddmmSpmm_Old(benchmark::State& state)
{
    auto m = benchMatrix();
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    Rng rng(13);
    DenseMatrix b(m.rows(), 16);
    DenseMatrix c(16, m.cols(), Layout::ColMajor);
    DenseMatrix f(m.cols(), 16);
    b.randomize(rng);
    c.randomize(rng);
    f.randomize(rng);
    for (auto _ : state) {
        SparseMatrix d = sddmmHier(t, b, c);
        auto dt = HierSparseTensor::build(
            FormatDescriptor::csr(d.rows(), d.cols()), d);
        auto e = spmmHier(dt, f);
        benchmark::DoNotOptimize(e.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues() * (16 + 16));
}

/** Fused workspace kernel: same computation, one pass over A, no
 *  materialized intermediate. */
void
BM_FusedSddmmSpmm_New(benchmark::State& state)
{
    auto m = benchMatrix();
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    Rng rng(13);
    DenseMatrix b(m.rows(), 16);
    DenseMatrix c(16, m.cols(), Layout::ColMajor);
    DenseMatrix f(m.cols(), 16);
    b.randomize(rng);
    c.randomize(rng);
    f.randomize(rng);
    for (auto _ : state) {
        auto e = fusedSddmmSpmmHier(t, b, c, f);
        benchmark::DoNotOptimize(e.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues() * (16 + 16));
}

void
BM_FormatBuild(benchmark::State& state)
{
    auto m = benchMatrix();
    for (auto _ : state) {
        auto t = HierSparseTensor::build(
            FormatDescriptor::bcsr(m.rows(), m.cols(), 8, 8), m);
        benchmark::DoNotOptimize(t.bytes());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}

void
BM_MttkrpCsf(benchmark::State& state)
{
    Rng rng(4);
    auto t = genTensor3(2048, 1024, 512, 100000, rng);
    DenseMatrix b(1024, 16), c(512, 16);
    b.randomize(rng);
    c.randomize(rng);
    for (auto _ : state) {
        auto d = mttkrpCsf(t, b, c);
        benchmark::DoNotOptimize(d.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.nnz());
}

// ---------------------------------------------------------------------------
// Compiled backend vs interpreter: the same lowered LoopNest executed by
// the generic interpreter and by the JIT'd C kernel, for all five
// algorithms. `--compare [--smoke]` runs a standalone harness with hard
// bitwise-equality / speedup / zero-recompile checks and emits
// BENCH_kernels.json; without it the `BM_NestExec_*` rows run under
// google-benchmark like everything else in this binary.
// ---------------------------------------------------------------------------

/** Owns everything one lowered-nest execution needs (stable addresses:
 *  LoopNestArgs points into the other members). */
struct NestHolder
{
    HierSparseTensor t;
    LoopNest nest;
    DenseVector vecB;
    DenseMatrix b, c, f;
    ParallelConfig par{1, 128};
    LoopNestArgs args;
};

/** Default (CSR/CSF concordant) schedule of @p alg on a banded input,
 *  lowered and packaged with randomized dense operands in the paper's
 *  fixed layouts. @p large picks the sizes the speedup contract is
 *  checked on; the small sizes keep the smoke run fast. */
std::shared_ptr<NestHolder>
makeNestHolder(Algorithm alg, bool large)
{
    Rng rng(21 + static_cast<u64>(alg));
    const AlgorithmInfo& info = algorithmInfo(alg);

    ProblemShape shape;
    SparseMatrix m;
    Sparse3Tensor t3;
    if (info.sparseOrder == 2) {
        u32 dim = large ? 8192 : 1024;
        m = genBanded(dim, dim, large ? 32 : 8, 0.5, rng);
        shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
        // GNN/attention-style fused shape: a small factor (contraction)
        // dimension against a wide output feature dimension. The k=32
        // dot product is a serial float chain neither engine may reorder
        // (bitwise contract), so a 256-wide contraction would just
        // measure FPU add latency for both.
        if (alg == Algorithm::FusedSDDMMSpMM)
            shape.indexExtent[2] = 32;
    } else {
        t3 = large ? genTensor3(2048, 1024, 512, 400000, rng)
                   : genTensor3(512, 256, 128, 20000, rng);
        shape = ProblemShape::forTensor3(alg, t3.dimI(), t3.dimK(),
                                         t3.dimL());
    }
    SuperSchedule s = defaultSchedule(shape);
    auto h = std::make_shared<NestHolder>(NestHolder{
        info.sparseOrder == 2
            ? HierSparseTensor::build(formatOf(s, shape), m)
            : HierSparseTensor::build(formatOf(s, shape), t3),
        lower(s, shape), DenseVector{}, DenseMatrix{}, DenseMatrix{},
        DenseMatrix{}, ParallelConfig{1, 128}, LoopNestArgs{}});

    const auto& ext = shape.indexExtent;
    switch (alg) {
      case Algorithm::SpMV:
        h->vecB = DenseVector(ext[1]);
        h->vecB.randomize(rng);
        break;
      case Algorithm::SpMM:
        h->b = DenseMatrix(ext[1], ext[2]);
        break;
      case Algorithm::SDDMM:
        h->b = DenseMatrix(ext[0], ext[2]);
        h->c = DenseMatrix(ext[2], ext[1], Layout::ColMajor);
        break;
      case Algorithm::MTTKRP:
        h->b = DenseMatrix(ext[1], ext[3]);
        h->c = DenseMatrix(ext[2], ext[3]);
        break;
      case Algorithm::FusedSDDMMSpMM:
        h->b = DenseMatrix(ext[0], ext[2]);
        h->c = DenseMatrix(ext[2], ext[1], Layout::ColMajor);
        h->f = DenseMatrix(ext[1], ext[3]);
        break;
    }
    if (h->b.rows())
        h->b.randomize(rng);
    if (h->c.rows())
        h->c.randomize(rng);
    if (h->f.rows())
        h->f.randomize(rng);

    h->args.a = &h->t;
    if (h->vecB.size())
        h->args.vecB = &h->vecB;
    if (h->b.rows())
        h->args.matB = &h->b;
    if (h->c.rows())
        h->args.matC = &h->c;
    if (h->f.rows())
        h->args.matF = &h->f;
    u32 hw = std::max(1u, std::thread::hardware_concurrency());
    h->par = ParallelConfig{std::min(std::max(1u, s.numThreads), hw),
                            std::max(1u, s.ompChunk)};
    return h;
}

void
BM_NestExec_Interp(benchmark::State& state)
{
    auto alg = static_cast<Algorithm>(state.range(0));
    auto h = makeNestHolder(alg, false);
    for (auto _ : state) {
        auto r = interpreterBackend().execute(h->nest, h->args, h->par);
        benchmark::DoNotOptimize(&r);
    }
    state.SetLabel(algorithmName(alg));
    state.SetItemsProcessed(state.iterations() * h->t.storedValues());
}

void
BM_NestExec_Compiled(benchmark::State& state)
{
    auto alg = static_cast<Algorithm>(state.range(0));
    if (!compiledBackend().compilerAvailable()) {
        state.SkipWithError("no working system C compiler");
        return;
    }
    auto h = makeNestHolder(alg, false);
    compiledBackend().execute(h->nest, h->args, h->par); // pay the JIT once
    for (auto _ : state) {
        auto r = compiledBackend().execute(h->nest, h->args, h->par);
        benchmark::DoNotOptimize(&r);
    }
    state.SetLabel(algorithmName(alg));
    state.SetItemsProcessed(state.iterations() * h->t.storedValues());
}

bool
bitwiseEqual(const LoopNestResult& a, const LoopNestResult& b)
{
    if (a.vec.size() != b.vec.size() ||
        a.mat.data().size() != b.mat.data().size() ||
        a.sparse.nnz() != b.sparse.nnz())
        return false;
    for (u64 i = 0; i < a.vec.size(); ++i)
        if (a.vec[i] != b.vec[i])
            return false;
    for (u64 i = 0; i < a.mat.data().size(); ++i)
        if (a.mat.data()[i] != b.mat.data()[i])
            return false;
    for (u64 n = 0; n < a.sparse.nnz(); ++n)
        if (a.sparse.values()[n] != b.sparse.values()[n])
            return false;
    return true;
}

/** Standalone compiled-vs-interpreter harness (hard exit-1 contracts). */
int
runCompare(bool smoke)
{
    using waco::bench::numCell;
    using waco::bench::printHeader;
    using waco::bench::printRow;
    using waco::bench::speedupCell;

    printHeader("kernels_compiled",
                "Compiled kernel backend vs LoopNest interpreter");
    if (!compiledBackend().compilerAvailable()) {
        std::printf("[  SKIPPED ] no working system C compiler; compiled "
                    "backend unavailable\n");
        return 0;
    }
    metrics::setEnabled(true);

    const u32 rounds = smoke ? 3 : 5;
    struct Row
    {
        std::string name;
        u64 nnz = 0;
        double interp_ms = 0, compiled_ms = 0;
        bool equal = false;
    };
    std::vector<Row> rows;
    std::vector<std::shared_ptr<NestHolder>> holders;
    u64 fallbacks_before = compiledBackend().stats().fallbacks;

    for (Algorithm alg : allAlgorithms()) {
        auto h = makeNestHolder(alg, !smoke);
        holders.push_back(h);
        auto median_ms = [&](KernelBackend& be, LoopNestResult& out) {
            out = be.execute(h->nest, h->args, h->par); // warm-up (pays JIT)
            std::vector<double> ts;
            for (u32 r = 0; r < rounds; ++r) {
                Timer w;
                auto got = be.execute(h->nest, h->args, h->par);
                ts.push_back(w.seconds());
                benchmark::DoNotOptimize(&got);
            }
            std::sort(ts.begin(), ts.end());
            return ts[ts.size() / 2] * 1e3;
        };
        Row row;
        row.name = algorithmName(alg);
        row.nnz = h->t.storedValues();
        LoopNestResult ri, rc;
        row.interp_ms = median_ms(interpreterBackend(), ri);
        row.compiled_ms = median_ms(compiledBackend(), rc);
        row.equal = bitwiseEqual(ri, rc);
        rows.push_back(row);
    }

    // Re-running every nest must be pure cache hits: zero new compiles.
    u64 compiles_before_repeat = compiledBackend().stats().compiles;
    for (const auto& h : holders)
        compiledBackend().execute(h->nest, h->args, h->par);
    u64 recompiles = compiledBackend().stats().compiles -
                     compiles_before_repeat;
    u64 fallbacks = compiledBackend().stats().fallbacks - fallbacks_before;
    u64 metric_compiles = static_cast<u64>(
        metrics::MetricsRegistry::instance().counter("codegen.compiles")
            .total());

    const std::vector<int> widths = {16, 10, 12, 12, 10, 8};
    printRow({"kernel", "nnz", "interp ms", "compiled ms", "speedup",
              "bitwise"},
             widths);
    for (const Row& r : rows)
        printRow({r.name, std::to_string(r.nnz), numCell(r.interp_ms, 3),
                  numCell(r.compiled_ms, 3),
                  speedupCell(r.interp_ms / r.compiled_ms),
                  r.equal ? "ok" : "DIFF"},
                 widths);
    std::printf("compiles %llu (codegen.compiles %llu), repeat recompiles "
                "%llu, fallbacks %llu\n",
                static_cast<unsigned long long>(compiles_before_repeat),
                static_cast<unsigned long long>(metric_compiles),
                static_cast<unsigned long long>(recompiles),
                static_cast<unsigned long long>(fallbacks));

    if (FILE* jf = std::fopen("BENCH_kernels.json", "w")) {
        std::fprintf(jf, "{\n  \"bench\": \"kernels_compiled\",\n");
        std::fprintf(jf, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(jf, "  \"compiler\": \"%s\",\n",
                     compiledBackend().compilerPath().c_str());
        std::fprintf(jf, "  \"codegen_compiles\": %llu,\n",
                     static_cast<unsigned long long>(metric_compiles));
        std::fprintf(jf, "  \"repeat_recompiles\": %llu,\n",
                     static_cast<unsigned long long>(recompiles));
        std::fprintf(jf, "  \"fallbacks\": %llu,\n",
                     static_cast<unsigned long long>(fallbacks));
        std::fprintf(jf, "  \"kernels\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& r = rows[i];
            std::fprintf(jf,
                         "    {\"kernel\": \"%s\", \"nnz\": %llu, "
                         "\"interp_ms\": %.6f, \"compiled_ms\": %.6f, "
                         "\"speedup\": %.3f, \"bitwise_equal\": %s}%s\n",
                         r.name.c_str(),
                         static_cast<unsigned long long>(r.nnz),
                         r.interp_ms, r.compiled_ms,
                         r.interp_ms / r.compiled_ms,
                         r.equal ? "true" : "false",
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(jf, "  ]\n}\n");
        std::fclose(jf);
        std::printf("wrote BENCH_kernels.json\n");
    }

    // Hard contracts: identical bits, no interpreter fallbacks, pure
    // cache hits on repeats, and the headline speedups on SpMM/fused.
    int rc_code = 0;
    for (const Row& r : rows) {
        if (!r.equal) {
            std::fprintf(stderr, "FAIL: %s compiled != interpreted\n",
                         r.name.c_str());
            rc_code = 1;
        }
    }
    if (recompiles != 0 || fallbacks != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu recompile(s) on repeat, %llu fallback(s)\n",
                     static_cast<unsigned long long>(recompiles),
                     static_cast<unsigned long long>(fallbacks));
        rc_code = 1;
    }
    for (const Row& r : rows) {
        if (r.name != "SpMM" && r.name != "FusedSDDMMSpMM")
            continue;
        if (r.interp_ms < 2.0 * r.compiled_ms) {
            std::fprintf(stderr,
                         "FAIL: %s compiled only %.2fx over interpreter "
                         "(need >= 2x)\n",
                         r.name.c_str(), r.interp_ms / r.compiled_ms);
            rc_code = 1;
        }
    }
    return rc_code;
}

BENCHMARK(BM_SpmvCsr);
BENCHMARK(BM_SpmmCsr)->Arg(16)->Arg(64);
BENCHMARK(BM_SpmvHierFormat)->DenseRange(0, 3);
BENCHMARK(BM_SpmvHier_Old)->DenseRange(0, 3);
BENCHMARK(BM_SpmvHier_New)->DenseRange(0, 3);
BENCHMARK(BM_SpmmHier_Old)->Arg(0)->Arg(3);
BENCHMARK(BM_SpmmHier_New)->Arg(0)->Arg(3);
BENCHMARK(BM_SpmvScheduled_Old)->Arg(4);
BENCHMARK(BM_SpmvScheduled_New)->Arg(4);
BENCHMARK(BM_TunerRepeat_Old);
BENCHMARK(BM_TunerRepeat_New);
BENCHMARK(BM_FusedSddmmSpmm_Old);
BENCHMARK(BM_FusedSddmmSpmm_New);
BENCHMARK(BM_FormatBuild);
BENCHMARK(BM_MttkrpCsf);
BENCHMARK(BM_NestExec_Interp)->DenseRange(0, 4);
BENCHMARK(BM_NestExec_Compiled)->DenseRange(0, 4);

} // namespace

int
main(int argc, char** argv)
{
    bool compare = false, smoke = false;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--compare"))
            compare = true;
        else if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;
    if (compare || smoke)
        return runCompare(smoke);
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    return 0;
}
