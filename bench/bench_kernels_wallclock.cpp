/**
 * @file
 * Google-benchmark microbenchmarks of the *real* execution engine (not the
 * machine model): wall-clock throughput of the CSR/CSF fast kernels and
 * the format-generic hierarchical kernels across formats. These numbers
 * are host-machine-dependent; they validate that the executor is a real,
 * runnable substrate rather than a paper construct.
 */
#include <benchmark/benchmark.h>

#include "data/generators.hpp"
#include "exec/kernels.hpp"

using namespace waco;

namespace {

SparseMatrix
benchMatrix()
{
    Rng rng(42);
    return genBanded(4096, 4096, 16, 0.5, rng);
}

void
BM_SpmvCsr(benchmark::State& state)
{
    auto m = benchMatrix();
    Csr csr(m);
    DenseVector b(m.cols());
    Rng rng(1);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmvCsr(csr, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}

void
BM_SpmmCsr(benchmark::State& state)
{
    auto m = benchMatrix();
    Csr csr(m);
    DenseMatrix b(m.cols(), static_cast<u64>(state.range(0)));
    Rng rng(2);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmmCsr(csr, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz() * state.range(0));
}

void
BM_SpmvHierFormat(benchmark::State& state)
{
    auto m = benchMatrix();
    FormatDescriptor desc = [&] {
        switch (state.range(0)) {
          case 0: return FormatDescriptor::csr(m.rows(), m.cols());
          case 1: return FormatDescriptor::csc(m.rows(), m.cols());
          case 2: return FormatDescriptor::bcsr(m.rows(), m.cols(), 4, 4);
          default: return FormatDescriptor::ucu(m.rows(), m.cols(), 16);
        }
    }();
    auto t = HierSparseTensor::build(desc, m);
    DenseVector b(m.cols());
    Rng rng(3);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmvHier(t, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetLabel(desc.name());
    state.SetItemsProcessed(state.iterations() * t.storedValues());
}

void
BM_FormatBuild(benchmark::State& state)
{
    auto m = benchMatrix();
    for (auto _ : state) {
        auto t = HierSparseTensor::build(
            FormatDescriptor::bcsr(m.rows(), m.cols(), 8, 8), m);
        benchmark::DoNotOptimize(t.bytes());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}

void
BM_MttkrpCsf(benchmark::State& state)
{
    Rng rng(4);
    auto t = genTensor3(2048, 1024, 512, 100000, rng);
    DenseMatrix b(1024, 16), c(512, 16);
    b.randomize(rng);
    c.randomize(rng);
    for (auto _ : state) {
        auto d = mttkrpCsf(t, b, c);
        benchmark::DoNotOptimize(d.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.nnz());
}

BENCHMARK(BM_SpmvCsr);
BENCHMARK(BM_SpmmCsr)->Arg(16)->Arg(64);
BENCHMARK(BM_SpmvHierFormat)->DenseRange(0, 3);
BENCHMARK(BM_FormatBuild);
BENCHMARK(BM_MttkrpCsf);

} // namespace

BENCHMARK_MAIN();
