/**
 * @file
 * Google-benchmark microbenchmarks of the *real* execution engine (not the
 * machine model): wall-clock throughput of the CSR/CSF fast kernels and
 * the format-generic hierarchical kernels across formats. These numbers
 * are host-machine-dependent; they validate that the executor is a real,
 * runnable substrate rather than a paper construct.
 *
 * The `legacy` namespace below preserves the pre-LoopNest hand-written
 * kernels (callback-based traversal, spawn-and-join-per-call threading)
 * ONLY inside this benchmark target, so `_Old` / `_New` rows print the
 * old and new executors side by side: the generic LoopNest interpreter
 * must stay within a few percent of the hand-written traversals, and the
 * persistent-pool scheduled path must beat per-call thread spawning on
 * tuner-style repeated small invocations.
 */
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "data/generators.hpp"
#include "exec/kernels.hpp"
#include "exec/scheduled.hpp"

using namespace waco;

// Pre-refactor kernels, kept compiled here (and only here) as the baseline
// the generic executor is measured against. Deleted from the library.
namespace legacy {

DenseVector
spmvHier(const HierSparseTensor& a, const DenseVector& b)
{
    DenseVector c(a.descriptor().dims()[0], 0.0f);
    a.forEachStored([&](const std::array<u32, 3>& x, float v, bool ok) {
        if (ok)
            c[x[0]] += v * b[x[1]];
    });
    return c;
}

DenseMatrix
spmmHier(const HierSparseTensor& a, const DenseMatrix& b)
{
    DenseMatrix c(a.descriptor().dims()[0], b.cols(), Layout::RowMajor, 0.0f);
    const u64 jd = b.cols();
    a.forEachStored([&](const std::array<u32, 3>& x, float v, bool ok) {
        if (!ok)
            return;
        for (u64 j = 0; j < jd; ++j)
            c.at(x[0], j) += v * b.at(x[1], j);
    });
    return c;
}

/** The old spawn-and-join-per-call dynamic chunking (including its
 *  oversubscription: par.threads workers regardless of chunk count). */
template <typename Fn>
void
dynamicTopLevel(const HierSparseTensor& a, const ParallelConfig& par, Fn&& fn)
{
    u64 total = a.topLevelSize();
    u32 threads = std::max<u32>(1, par.threads);
    u64 chunk = std::max<u32>(1, par.chunk);
    if (threads == 1) {
        fn(0, total);
        return;
    }
    std::atomic<u64> next{0};
    auto worker = [&]() {
        for (;;) {
            u64 begin = next.fetch_add(chunk);
            if (begin >= total)
                return;
            fn(begin, std::min(total, begin + chunk));
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto& t : pool)
        t.join();
}

DenseVector
spmvScheduled(const HierSparseTensor& a, const DenseVector& b,
              const ParallelConfig& par)
{
    if (!parallelizableTopLevel(Algorithm::SpMV, a))
        return legacy::spmvHier(a, b);
    DenseVector c(a.descriptor().dims()[0], 0.0f);
    dynamicTopLevel(a, par, [&](u64 begin, u64 end) {
        a.forEachStoredInTopRange(
            begin, end, [&](const std::array<u32, 3>& x, float v, bool ok) {
                if (ok)
                    c[x[0]] += v * b[x[1]];
            });
    });
    return c;
}

DenseMatrix
spmmScheduled(const HierSparseTensor& a, const DenseMatrix& b,
              const ParallelConfig& par)
{
    if (!parallelizableTopLevel(Algorithm::SpMM, a))
        return legacy::spmmHier(a, b);
    DenseMatrix c(a.descriptor().dims()[0], b.cols(), Layout::RowMajor, 0.0f);
    const u64 jd = b.cols();
    dynamicTopLevel(a, par, [&](u64 begin, u64 end) {
        a.forEachStoredInTopRange(
            begin, end, [&](const std::array<u32, 3>& x, float v, bool ok) {
                if (!ok)
                    return;
                for (u64 j = 0; j < jd; ++j)
                    c.at(x[0], j) += v * b.at(x[1], j);
            });
    });
    return c;
}

} // namespace legacy

namespace {

SparseMatrix
benchMatrix()
{
    Rng rng(42);
    return genBanded(4096, 4096, 16, 0.5, rng);
}

FormatDescriptor
benchFormat(const SparseMatrix& m, i64 which)
{
    switch (which) {
      case 0: return FormatDescriptor::csr(m.rows(), m.cols());
      case 1: return FormatDescriptor::csc(m.rows(), m.cols());
      case 2: return FormatDescriptor::bcsr(m.rows(), m.cols(), 4, 4);
      default: return FormatDescriptor::ucu(m.rows(), m.cols(), 16);
    }
}

void
BM_SpmvCsr(benchmark::State& state)
{
    auto m = benchMatrix();
    Csr csr(m);
    DenseVector b(m.cols());
    Rng rng(1);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmvCsr(csr, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}

void
BM_SpmmCsr(benchmark::State& state)
{
    auto m = benchMatrix();
    Csr csr(m);
    DenseMatrix b(m.cols(), static_cast<u64>(state.range(0)));
    Rng rng(2);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmmCsr(csr, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz() * state.range(0));
}

void
BM_SpmvHierFormat(benchmark::State& state)
{
    auto m = benchMatrix();
    FormatDescriptor desc = [&] {
        switch (state.range(0)) {
          case 0: return FormatDescriptor::csr(m.rows(), m.cols());
          case 1: return FormatDescriptor::csc(m.rows(), m.cols());
          case 2: return FormatDescriptor::bcsr(m.rows(), m.cols(), 4, 4);
          default: return FormatDescriptor::ucu(m.rows(), m.cols(), 16);
        }
    }();
    auto t = HierSparseTensor::build(desc, m);
    DenseVector b(m.cols());
    Rng rng(3);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmvHier(t, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetLabel(desc.name());
    state.SetItemsProcessed(state.iterations() * t.storedValues());
}

/** Old hand-written callback traversal, per format (baseline). */
void
BM_SpmvHier_Old(benchmark::State& state)
{
    auto m = benchMatrix();
    auto desc = benchFormat(m, state.range(0));
    auto t = HierSparseTensor::build(desc, m);
    DenseVector b(m.cols());
    Rng rng(3);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = legacy::spmvHier(t, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetLabel(desc.name());
    state.SetItemsProcessed(state.iterations() * t.storedValues());
}

/** New generic LoopNest interpreter, same formats (must stay within ~5%). */
void
BM_SpmvHier_New(benchmark::State& state)
{
    auto m = benchMatrix();
    auto desc = benchFormat(m, state.range(0));
    auto t = HierSparseTensor::build(desc, m);
    DenseVector b(m.cols());
    Rng rng(3);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmvHier(t, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetLabel(desc.name());
    state.SetItemsProcessed(state.iterations() * t.storedValues());
}

void
BM_SpmmHier_Old(benchmark::State& state)
{
    auto m = benchMatrix();
    auto desc = benchFormat(m, state.range(0));
    auto t = HierSparseTensor::build(desc, m);
    DenseMatrix b(m.cols(), 64);
    Rng rng(5);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = legacy::spmmHier(t, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetLabel(desc.name());
    state.SetItemsProcessed(state.iterations() * t.storedValues() * 64);
}

void
BM_SpmmHier_New(benchmark::State& state)
{
    auto m = benchMatrix();
    auto desc = benchFormat(m, state.range(0));
    auto t = HierSparseTensor::build(desc, m);
    DenseMatrix b(m.cols(), 64);
    Rng rng(5);
    b.randomize(rng);
    for (auto _ : state) {
        auto c = spmmHier(t, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetLabel(desc.name());
    state.SetItemsProcessed(state.iterations() * t.storedValues() * 64);
}

/** Parallel scheduled SpMV: spawn-and-join per call (old runtime). */
void
BM_SpmvScheduled_Old(benchmark::State& state)
{
    auto m = benchMatrix();
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    DenseVector b(m.cols());
    Rng rng(7);
    b.randomize(rng);
    ParallelConfig par{static_cast<u32>(state.range(0)), 64};
    for (auto _ : state) {
        auto c = legacy::spmvScheduled(t, b, par);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues());
}

/** Parallel scheduled SpMV: persistent thread pool (new runtime). */
void
BM_SpmvScheduled_New(benchmark::State& state)
{
    auto m = benchMatrix();
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    DenseVector b(m.cols());
    Rng rng(7);
    b.randomize(rng);
    ParallelConfig par{static_cast<u32>(state.range(0)), 64};
    for (auto _ : state) {
        auto c = spmvScheduled(t, b, par);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues());
}

/**
 * Tuner-style workload: thousands of parallel invocations on a *small*
 * kernel, where per-call thread spawn/join dominates. Each benchmark
 * iteration is one scheduled SpMM call on a 256x256 input with 4 threads —
 * the shape of the inner loop of corpus labeling and top-k remeasurement.
 */
void
BM_TunerRepeat_Old(benchmark::State& state)
{
    Rng rng(11);
    auto m = genBanded(256, 256, 8, 0.5, rng);
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    DenseMatrix b(m.cols(), 16);
    b.randomize(rng);
    ParallelConfig par{4, 16};
    for (auto _ : state) {
        auto c = legacy::spmmScheduled(t, b, par);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues() * 16);
}

void
BM_TunerRepeat_New(benchmark::State& state)
{
    Rng rng(11);
    auto m = genBanded(256, 256, 8, 0.5, rng);
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    DenseMatrix b(m.cols(), 16);
    b.randomize(rng);
    ParallelConfig par{4, 16};
    for (auto _ : state) {
        auto c = spmmScheduled(t, b, par);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues() * 16);
}

/**
 * Unfused SDDMM→SpMM: run SDDMM, materialize the intermediate sparse
 * product as a fresh CSR hierarchy, then run SpMM over it — the two-kernel
 * pipeline a user without the fused lowering would write.
 */
void
BM_FusedSddmmSpmm_Old(benchmark::State& state)
{
    auto m = benchMatrix();
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    Rng rng(13);
    DenseMatrix b(m.rows(), 16);
    DenseMatrix c(16, m.cols(), Layout::ColMajor);
    DenseMatrix f(m.cols(), 16);
    b.randomize(rng);
    c.randomize(rng);
    f.randomize(rng);
    for (auto _ : state) {
        SparseMatrix d = sddmmHier(t, b, c);
        auto dt = HierSparseTensor::build(
            FormatDescriptor::csr(d.rows(), d.cols()), d);
        auto e = spmmHier(dt, f);
        benchmark::DoNotOptimize(e.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues() * (16 + 16));
}

/** Fused workspace kernel: same computation, one pass over A, no
 *  materialized intermediate. */
void
BM_FusedSddmmSpmm_New(benchmark::State& state)
{
    auto m = benchMatrix();
    auto t = HierSparseTensor::build(
        FormatDescriptor::csr(m.rows(), m.cols()), m);
    Rng rng(13);
    DenseMatrix b(m.rows(), 16);
    DenseMatrix c(16, m.cols(), Layout::ColMajor);
    DenseMatrix f(m.cols(), 16);
    b.randomize(rng);
    c.randomize(rng);
    f.randomize(rng);
    for (auto _ : state) {
        auto e = fusedSddmmSpmmHier(t, b, c, f);
        benchmark::DoNotOptimize(e.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.storedValues() * (16 + 16));
}

void
BM_FormatBuild(benchmark::State& state)
{
    auto m = benchMatrix();
    for (auto _ : state) {
        auto t = HierSparseTensor::build(
            FormatDescriptor::bcsr(m.rows(), m.cols(), 8, 8), m);
        benchmark::DoNotOptimize(t.bytes());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}

void
BM_MttkrpCsf(benchmark::State& state)
{
    Rng rng(4);
    auto t = genTensor3(2048, 1024, 512, 100000, rng);
    DenseMatrix b(1024, 16), c(512, 16);
    b.randomize(rng);
    c.randomize(rng);
    for (auto _ : state) {
        auto d = mttkrpCsf(t, b, c);
        benchmark::DoNotOptimize(d.data().data());
    }
    state.SetItemsProcessed(state.iterations() * t.nnz());
}

BENCHMARK(BM_SpmvCsr);
BENCHMARK(BM_SpmmCsr)->Arg(16)->Arg(64);
BENCHMARK(BM_SpmvHierFormat)->DenseRange(0, 3);
BENCHMARK(BM_SpmvHier_Old)->DenseRange(0, 3);
BENCHMARK(BM_SpmvHier_New)->DenseRange(0, 3);
BENCHMARK(BM_SpmmHier_Old)->Arg(0)->Arg(3);
BENCHMARK(BM_SpmmHier_New)->Arg(0)->Arg(3);
BENCHMARK(BM_SpmvScheduled_Old)->Arg(4);
BENCHMARK(BM_SpmvScheduled_New)->Arg(4);
BENCHMARK(BM_TunerRepeat_Old);
BENCHMARK(BM_TunerRepeat_New);
BENCHMARK(BM_FusedSddmmSpmm_Old);
BENCHMARK(BM_FusedSddmmSpmm_New);
BENCHMARK(BM_FormatBuild);
BENCHMARK(BM_MttkrpCsf);

} // namespace

BENCHMARK_MAIN();
