/**
 * @file
 * Reproduces Figure 15: train/validation loss of the SpMM cost model under
 * four different feature extractors — HumanFeature, DenseConv (downsampled
 * conventional CNN), MinkowskiNet-style sparse CNN, and WACONet.
 *
 * Expected shape: HumanFeature plateaus highest; DenseConv below it;
 * the sparse-convolution extractors below DenseConv; and WACONet (strided
 * receptive-field growth + all-layer concatenation) lowest.
 */
#include <cstdio>

#include "common.hpp"
#include "core/trainer.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Figure 15", "Train/validation loss of the SpMM cost model "
                             "with four feature extractors");

    // Shared dataset (deterministic).
    CorpusOptions copt;
    copt.count = 16;
    copt.minDim = 512;
    copt.maxDim = 4096;
    copt.minNnz = 2000;
    copt.maxNnz = 12000;
    auto corpus = makeCorpus(copt, 1501);
    RuntimeOracle oracle(MachineConfig::intel24());
    auto dataset = buildDataset(Algorithm::SpMM, corpus, oracle, 24, 1502);

    ExtractorConfig cfg;
    cfg.channels = 16;
    cfg.numLayers = 8;
    cfg.featureDim = 64;
    TrainOptions topt;
    topt.epochs = 10;
    topt.batchSchedules = 14;

    const std::vector<std::pair<std::string, std::string>> extractors = {
        {"human", "HumanFeature"},
        {"denseconv", "DenseConv"},
        {"minkowski", "MinkowskiNet"},
        {"waconet", "WACONet"},
    };

    std::vector<std::vector<EpochStats>> histories;
    for (const auto& [kind, label] : extractors) {
        Timer t;
        WacoCostModel model(Algorithm::SpMM, kind, cfg, 1503);
        histories.push_back(trainCostModel(model, dataset, topt));
        std::printf("[trained %s in %.1fs]\n", label.c_str(), t.seconds());
    }

    std::printf("\nPer-epoch losses (train / val):\n");
    std::vector<std::string> hdr = {"Epoch"};
    for (const auto& [kind, label] : extractors)
        hdr.push_back(label);
    printRow(hdr, {7, 20, 20, 20, 20});
    for (u32 e = 0; e < topt.epochs; ++e) {
        std::vector<std::string> row = {std::to_string(e)};
        for (const auto& h : histories) {
            row.push_back(numCell(h[e].trainLoss, 3) + " / " +
                          numCell(h[e].valLoss, 3));
        }
        printRow(row, {7, 20, 20, 20, 20});
    }

    std::printf("\nFinal validation loss and pairwise ranking accuracy:\n");
    for (std::size_t i = 0; i < extractors.size(); ++i) {
        std::printf("  %-14s val-loss %.3f  rank-acc %.3f\n",
                    extractors[i].second.c_str(), histories[i].back().valLoss,
                    histories[i].back().valOrderAccuracy);
    }
    std::printf("\n(Paper: WACONet < MinkowskiNet < DenseConv < "
                "HumanFeature, WACONet improving losses ~50%% over a "
                "conventional CNN.)\n");
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
