/**
 * @file
 * Reproduces Figure 14: icc only emits AVX vector code (vfmadd213ps) for
 * the inner dense-block loop of a UCU-format SpMV once the block size b
 * reaches 16. Sweeping b shows the per-nonzero time cliff at the
 * vectorization threshold — the compiler heuristic WACO learns to exploit
 * (Table 6's "dense block <50% filled" wins). The gcc-flavored AMD machine
 * model vectorizes at b >= 8, shifting the cliff.
 */
#include <cstdio>

#include "common.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

namespace {

/** UCU SpMV schedule with column-block size b. */
SuperSchedule
ucuSchedule(const ProblemShape& shape, u32 b)
{
    auto s = defaultSchedule(shape);
    s.splits[1] = b;
    s.sparseLevelOrder = {outerSlot(0), innerSlot(0), outerSlot(1),
                          innerSlot(1)};
    s.sparseLevelFormats = {LevelFormat::Uncompressed, LevelFormat::Compressed,
                            LevelFormat::Compressed,
                            LevelFormat::Uncompressed};
    return s;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Figure 14", "Compiler SIMD heuristic: UCU SpMV inner-block "
                             "sweep (vector code only from b >= threshold)");

    Rng rng(77);
    // Block-diagonal pattern with 32-wide fully dense blocks so every
    // UCU block size divides the dense runs.
    auto m = genBlockDiagonal(16384, 32, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, m.rows(), m.cols());

    printRow({"b", "intel24+icc", "", "amd8+gcc", ""},
             {6, 14, 10, 14, 10});
    printRow({"", "ns/nnz", "SIMD?", "ns/nnz", "SIMD?"}, {6, 14, 10, 14, 10});
    RuntimeOracle intel(MachineConfig::intel24());
    RuntimeOracle amd(MachineConfig::amd8());
    for (u32 b = 2; b <= 64; b *= 2) {
        auto s = ucuSchedule(shape, b);
        auto ri = intel.measure(m, shape, s);
        auto ra = amd.measure(m, shape, s);
        double ni = ri.seconds / static_cast<double>(m.nnz()) * 1e9;
        double na = ra.seconds / static_cast<double>(m.nnz()) * 1e9;
        printRow({std::to_string(b), numCell(ni, 4), ri.simdUsed ? "yes" : "no",
                  numCell(na, 4), ra.simdUsed ? "yes" : "no"},
                 {6, 14, 10, 14, 10});
    }
    std::printf("\n(icc-modelled machine vectorizes from b=16, gcc-modelled "
                "from b=8 — the cliffs WACO's cost model internalizes.)\n");
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
