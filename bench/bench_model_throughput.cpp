/**
 * @file
 * Cost-model inference-engine throughput: schedules/sec through the feature
 * extractor, the program embedder, the predictor head, and the end-to-end
 * generic graph walk, each measured on the pre-optimization path (naive
 * GEMM, rulebook rebuilt every forward, scalar batch-1 scoring) and on the
 * batched engine (blocked GEMM, cached rulebooks, hoisted query feature,
 * frontier-batched scoring). Emits BENCH_model.json with old/new rows.
 *
 * `--smoke` shrinks every size for the tier-1 ctest run and hard-fails
 * (exit 1) when the batched walk's hits differ from the scalar walk's.
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "ir/schedule.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

namespace {

struct ThroughputRow
{
    std::string name;
    std::string unit;
    double oldPerSec = 0.0;
    double newPerSec = 0.0;

    double speedup() const { return oldPerSec > 0 ? newPerSec / oldPerSec : 0; }
};

/** Run @p body until @p min_seconds elapse; returns units/sec. */
template <typename Body>
double
unitsPerSec(double min_seconds, Body&& body)
{
    // One warm-up call (pulls code+data into cache, primes rulebooks when
    // the cache is enabled — exactly the steady state being measured).
    double units = body();
    Timer t;
    double total = 0.0;
    u32 reps = 0;
    do {
        total += body();
        ++reps;
    } while (t.seconds() < min_seconds);
    (void)units;
    (void)reps;
    return total / t.seconds();
}

void
useNewEngine()
{
    nn::setGemmKind(nn::GemmKind::Blocked);
    nn::setRulebookCacheEnabled(true);
}

void
useOldEngine()
{
    nn::setGemmKind(nn::GemmKind::Naive);
    nn::setRulebookCacheEnabled(false);
}

bool
sameHits(const std::vector<HnswHit>& a, const std::vector<HnswHit>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].id != b[i].id || a[i].dist != b[i].dist)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    argc = parseObservabilityFlags(argc, argv);
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Inference engine",
                smoke ? "Model throughput (smoke sizes)"
                      : "Model throughput: old path vs batched engine");

    // Random-init model: throughput does not depend on trained weights.
    ExtractorConfig cfg;
    cfg.channels = smoke ? 4u : 16u;
    cfg.numLayers = smoke ? 2u : 8u;
    cfg.featureDim = smoke ? 16u : 64u;
    WacoCostModel model(Algorithm::SpMM, "waconet", cfg, 42);

    // Corpus of SuperSchedules standing in for the KNN graph's nodes.
    const u32 kNodes = smoke ? 80u : 1000u;
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 4096, 4096);
    SuperScheduleSpace space(Algorithm::SpMM, shape);
    Rng rng(7);
    std::vector<SuperSchedule> nodes;
    nodes.reserve(kNodes);
    for (u32 i = 0; i < kNodes; ++i)
        nodes.push_back(space.sample(rng));

    // Query patterns (two, so the rulebook cache is exercised across
    // alternating inputs the way alternating tuner queries exercise it).
    std::vector<PatternInput> patterns;
    for (u64 seed : {11ull, 12ull}) {
        Rng prng(seed);
        auto m = smoke ? genUniform(128, 128, 400, prng)
                       : genUniform(2048, 2048, 12000, prng);
        patterns.push_back(PatternInput::fromMatrix(m));
    }

    const double kMinSec = smoke ? 0.02 : 0.25;
    std::vector<ThroughputRow> rows;

    // ---- Feature extractor: patterns/sec over alternating inputs. -------
    {
        ThroughputRow r{"extractor", "patterns", 0, 0};
        u32 which = 0;
        auto once = [&]() {
            nn::Mat f = model.extractFeature(patterns[which]);
            which ^= 1u;
            return 1.0 + 0.0 * f.at(0, 0);
        };
        useOldEngine();
        r.oldPerSec = unitsPerSec(kMinSec, once);
        useNewEngine();
        r.newPerSec = unitsPerSec(kMinSec, once);
        rows.push_back(r);
    }

    // ---- Program embedder: schedules/sec in 256-row batches. ------------
    {
        ThroughputRow r{"embedder", "schedules", 0, 0};
        auto once = [&]() {
            double done = 0;
            constexpr u32 kChunk = 256;
            for (u32 base = 0; base < nodes.size(); base += kChunk) {
                u32 end = std::min<u32>(static_cast<u32>(nodes.size()),
                                        base + kChunk);
                std::vector<SuperSchedule> chunk(nodes.begin() + base,
                                                 nodes.begin() + end);
                nn::Mat e = model.programEmbeddings(chunk);
                done += e.rows;
            }
            return done;
        };
        useOldEngine();
        r.oldPerSec = unitsPerSec(kMinSec, once);
        useNewEngine();
        r.newPerSec = unitsPerSec(kMinSec, once);
        rows.push_back(r);
    }

    // Precompute the corpus embeddings once (the engine's steady state) —
    // the predictor and search rows below score against these.
    useNewEngine();
    nn::Mat embeddings(kNodes, model.embeddingDim());
    {
        constexpr u32 kChunk = 256;
        for (u32 base = 0; base < kNodes; base += kChunk) {
            u32 end = std::min(kNodes, base + kChunk);
            std::vector<SuperSchedule> chunk(nodes.begin() + base,
                                             nodes.begin() + end);
            nn::Mat e = model.programEmbeddings(chunk);
            for (u32 n = 0; n < e.rows; ++n)
                std::copy(e.row(n), e.row(n) + e.cols,
                          embeddings.row(base + n));
        }
    }
    nn::Mat feature = model.extractFeature(patterns[0]);

    // ---- Predictor head: schedules/sec scoring the whole corpus. --------
    {
        ThroughputRow r{"predictor", "schedules", 0, 0};
        // Old path: per-candidate batch-1 forward with the broadcast
        // feature copy — how the graph walk used to invoke the head.
        auto once_old = [&]() {
            double acc = 0;
            nn::Mat one(1, embeddings.cols);
            for (u32 n = 0; n < embeddings.rows; ++n) {
                std::copy(embeddings.row(n), embeddings.row(n) + embeddings.cols,
                          one.row(0));
                nn::Mat p = model.predictFromEmbeddings(feature, one);
                acc += p.at(0, 0);
            }
            return static_cast<double>(embeddings.rows) + 0.0 * acc;
        };
        auto once_new = [&]() {
            auto q = model.beginQuery(feature);
            nn::Mat p =
                model.scoreEmbeddings(q, embeddings, nullptr, embeddings.rows);
            return static_cast<double>(p.rows) + 0.0 * p.at(0, 0);
        };
        useOldEngine();
        r.oldPerSec = unitsPerSec(kMinSec, once_old);
        useNewEngine();
        r.newPerSec = unitsPerSec(kMinSec, once_new);
        rows.push_back(r);
    }

    // ---- End-to-end graph walk (tuner phase 2), ef=64. ------------------
    Hnsw graph(model.embeddingDim(), 16, 60);
    for (u32 n = 0; n < embeddings.rows; ++n)
        graph.add(embeddings.row(n));
    const u32 kEf = 64, kTopK = 10;
    {
        ThroughputRow r{"search", "scored schedules", 0, 0};
        // Old: scalar walk, each score a batch-1 row copy + full forward.
        auto once_old = [&]() {
            u64 evals = 0;
            nn::Mat one(1, embeddings.cols);
            auto hits = graph.searchGeneric(
                [&](u32 id) {
                    std::copy(embeddings.row(id),
                              embeddings.row(id) + embeddings.cols, one.row(0));
                    nn::Mat p = model.predictFromEmbeddings(feature, one);
                    return static_cast<double>(p.at(0, 0));
                },
                kTopK, kEf, &evals);
            return static_cast<double>(evals) + 0.0 * hits.size();
        };
        // New: hoisted query + frontier-batched scoring (what tune() runs).
        auto once_new = [&]() {
            u64 evals = 0;
            auto q = model.beginQuery(feature);
            auto hits = graph.searchGenericBatched(
                [&](const u32* ids, u32 count, double* out) {
                    nn::Mat p = model.scoreEmbeddings(q, embeddings, ids, count);
                    for (u32 i = 0; i < count; ++i)
                        out[i] = static_cast<double>(p.at(i, 0));
                },
                kTopK, kEf, &evals);
            return static_cast<double>(evals) + 0.0 * hits.size();
        };
        useOldEngine();
        r.oldPerSec = unitsPerSec(kMinSec, once_old);
        useNewEngine();
        r.newPerSec = unitsPerSec(kMinSec, once_new);
        rows.push_back(r);
    }

    // ---- Batched-vs-scalar identity check (hard failure in smoke). ------
    useNewEngine();
    bool identical = true;
    {
        auto q = model.beginQuery(feature);
        auto scalar = graph.searchGeneric(
            [&](u32 id) {
                nn::Mat p = model.scoreEmbeddings(q, embeddings, &id, 1);
                return static_cast<double>(p.at(0, 0));
            },
            kTopK, kEf);
        auto batched = graph.searchGenericBatched(
            [&](const u32* ids, u32 count, double* out) {
                nn::Mat p = model.scoreEmbeddings(q, embeddings, ids, count);
                for (u32 i = 0; i < count; ++i)
                    out[i] = static_cast<double>(p.at(i, 0));
            },
            kTopK, kEf);
        identical = sameHits(scalar, batched);
    }

    printRow({"Stage", "Old/s", "New/s", "Speedup"}, {14, 14, 14, 10});
    for (const auto& r : rows)
        printRow({r.name, numCell(r.oldPerSec, 1), numCell(r.newPerSec, 1),
                  speedupCell(r.speedup())},
                 {14, 14, 14, 10});
    std::printf("batched search hits %s scalar hits\n",
                identical ? "identical to" : "DIFFER FROM");

    // ---- BENCH_model.json -----------------------------------------------
    if (FILE* f = std::fopen("BENCH_model.json", "w")) {
        std::fprintf(f, "{\n  \"bench\": \"model_throughput\",\n");
        std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(f, "  \"corpus_nodes\": %u,\n  \"ef_search\": %u,\n",
                     kNodes, kEf);
        std::fprintf(f, "  \"batched_hits_identical\": %s,\n",
                     identical ? "true" : "false");
        std::fprintf(f, "  \"rows\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto& r = rows[i];
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"unit\": \"%s\", "
                         "\"old_per_sec\": %.3f, \"new_per_sec\": %.3f, "
                         "\"speedup\": %.3f}%s\n",
                         r.name.c_str(), r.unit.c_str(), r.oldPerSec,
                         r.newPerSec, r.speedup(), i + 1 < rows.size() ? ","
                                                                       : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote BENCH_model.json\n");
    }

    writeObservabilityOutputs();
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: batched searchGeneric returned different hits "
                     "than the scalar walk\n");
        return 1;
    }
    return 0;
}
