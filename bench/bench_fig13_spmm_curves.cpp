/**
 * @file
 * Reproduces Figure 13: per-matrix speedup of WACO over each of the four
 * baselines (MKL, BestFormat, Fixed CSR, ASpT) on SpMM across the test
 * set, sorted by speedup, with the geomean marked.
 *
 * Expected shape: geomean > 1 against every baseline; MKL and BestFormat
 * (the auto-tuning baselines) have more points below 1.0 than the fixed
 * implementations, because they adapt to part of the space.
 */
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

namespace {

void
printCurve(const std::string& name, std::vector<double> speedups)
{
    if (speedups.empty())
        return;
    std::sort(speedups.begin(), speedups.end());
    std::printf("\nSpeedup over %s (sorted; '#' rows below 1.0x):\n",
                name.c_str());
    // Compact ASCII curve: one bucket per matrix, log-ish scale markers.
    u32 below = 0;
    for (double s : speedups)
        below += s < 1.0;
    std::printf("  matrices: %zu, below 1.0x: %u, min %.2fx, median %.2fx, "
                "max %.2fx, geomean %.2fx\n",
                speedups.size(), below, speedups.front(),
                median(speedups), speedups.back(), geomean(speedups));
    std::printf("  curve: ");
    for (std::size_t i = 0; i < speedups.size(); ++i)
        std::printf("%s", speedups[i] < 1.0 ? "." : (speedups[i] < 2 ? "o" : "O"));
    std::printf("   (.<1x  o:1-2x  O:>2x)\n");
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Figure 13", "WACO vs four baselines on SpMM, per-matrix "
                             "speedup curves");

    auto tuner = makeTrainedTuner(Algorithm::SpMM, MachineConfig::intel24());
    auto tests = testMatrices(36);
    auto rows = runComparison2d(Algorithm::SpMM, *tuner, tests);

    std::vector<double> vs_mkl, vs_bf, vs_fixed, vs_aspt;
    for (const auto& r : rows) {
        if (r.mkl > 0)
            vs_mkl.push_back(r.mkl / r.waco);
        vs_bf.push_back(r.bestformat / r.waco);
        vs_fixed.push_back(r.fixed / r.waco);
        if (r.aspt > 0)
            vs_aspt.push_back(r.aspt / r.waco);
    }
    printCurve("MKL", vs_mkl);
    printCurve("BestFormat", vs_bf);
    printCurve("Fixed CSR", vs_fixed);
    printCurve("ASpT", vs_aspt);

    std::printf("\n(Paper geomeans on SpMM: 1.7x over MKL, 1.2x over "
                "BestFormat, 1.3x over Fixed CSR, 1.4x over ASpT.)\n");
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
