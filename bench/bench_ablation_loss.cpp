/**
 * @file
 * Ablation (DESIGN.md §5): pairwise ranking loss vs L2 regression loss for
 * the cost model (Section 4.1.3 argues the model only needs the *ranking*
 * of SuperSchedules, not absolute runtimes).
 *
 * Both models share the dataset, architecture and seed; we compare
 * validation ranking accuracy and top-1 regret (how much slower the
 * model's predicted-best schedule is than the true best in the batch).
 */
#include <cstdio>

#include "common.hpp"
#include "core/trainer.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

namespace {

/** Mean top-1 regret over validation entries: runtime(predicted best) /
 *  runtime(true best) within each entry's labeled schedules. */
double
topOneRegret(WacoCostModel& model, const CostDataset& ds)
{
    std::vector<double> regret;
    for (u32 id : ds.valIds) {
        const auto& e = ds.entries[id];
        std::vector<SuperSchedule> scheds;
        std::vector<double> times;
        for (const auto& s : e.samples) {
            scheds.push_back(s.schedule);
            times.push_back(s.runtime);
        }
        auto feature = model.extractFeature(e.pattern);
        auto pred = model.predict(feature, scheds);
        u32 best_pred = 0;
        for (u32 n = 1; n < pred.rows; ++n) {
            if (pred.at(n, 0) < pred.at(best_pred, 0))
                best_pred = n;
        }
        double truth_best = *std::min_element(times.begin(), times.end());
        regret.push_back(times[best_pred] / truth_best);
    }
    return geomean(regret);
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Ablation: loss", "Pairwise hinge ranking loss vs L2 "
                                  "log-runtime regression (SpMV)");

    CorpusOptions copt;
    copt.count = 14;
    copt.minDim = 512;
    copt.maxDim = 4096;
    copt.minNnz = 2000;
    copt.maxNnz = 12000;
    auto corpus = makeCorpus(copt, 2001);
    RuntimeOracle oracle(MachineConfig::intel24());
    auto ds = buildDataset(Algorithm::SpMV, corpus, oracle, 24, 2002);

    ExtractorConfig cfg;
    cfg.channels = 16;
    cfg.numLayers = 8;
    cfg.featureDim = 64;

    printRow({"Loss", "val rank-acc", "top-1 regret"}, {16, 14, 14});
    for (bool use_l2 : {false, true}) {
        WacoCostModel model(Algorithm::SpMV, "waconet", cfg, 2003);
        TrainOptions topt;
        topt.epochs = 10;
        topt.batchSchedules = 14;
        topt.useL2 = use_l2;
        auto hist = trainCostModel(model, ds, topt);
        printRow({use_l2 ? "L2 (log-time)" : "Ranking (hinge)",
                  numCell(hist.back().valOrderAccuracy, 3),
                  speedupCell(topOneRegret(model, ds))},
                 {16, 14, 14});
    }
    std::printf("\n(Expected: the ranking loss orders schedules at least as "
                "well, which is what the search consumes.)\n");
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
