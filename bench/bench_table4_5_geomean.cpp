/**
 * @file
 * Reproduces Tables 4 and 5: geomean speedup of WACO over the auto-tuning
 * baselines (BestFormat, MKL) and the fixed implementations (Fixed
 * CSR/CSF, ASpT) for all four algorithms (SpMV, SpMM, SDDMM, MTTKRP).
 *
 * Expected shape: every populated cell > 1.0x — WACO beats each baseline
 * on geomean for every algorithm, as in the paper (1.18x-2.32x vs
 * auto-tuners; 1.14x-1.54x vs fixed implementations).
 */
#include <cstdio>

#include "common.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Tables 4 + 5", "Geomean speedup of WACO over auto-tuners "
                                "and fixed implementations, all algorithms");

    struct Row
    {
        std::string alg;
        double vs_bestformat = 0, vs_mkl = 0, vs_fixed = 0, vs_aspt = 0;
    };
    std::vector<Row> table;

    for (Algorithm alg : {Algorithm::SpMV, Algorithm::SpMM,
                          Algorithm::SDDMM}) {
        auto tuner = makeTrainedTuner(alg, MachineConfig::intel24());
        auto tests = testMatrices(24);
        auto rows = runComparison2d(alg, *tuner, tests);
        Row r;
        r.alg = algorithmName(alg);
        r.vs_bestformat = geomeanSpeedup(rows, &MethodTimes::bestformat);
        r.vs_fixed = geomeanSpeedup(rows, &MethodTimes::fixed);
        if (alg != Algorithm::SDDMM)
            r.vs_mkl = geomeanSpeedup(rows, &MethodTimes::mkl);
        if (alg != Algorithm::SpMV)
            r.vs_aspt = geomeanSpeedup(rows, &MethodTimes::aspt);
        table.push_back(r);
    }
    {
        auto tuner = makeTrainedTuner(Algorithm::MTTKRP,
                                      MachineConfig::intel24());
        auto tests = testTensors(10);
        auto rows = runComparison3d(*tuner, tests);
        Row r;
        r.alg = "MTTKRP";
        r.vs_bestformat = geomeanSpeedup(rows, &MethodTimes::bestformat);
        r.vs_fixed = geomeanSpeedup(rows, &MethodTimes::fixed);
        table.push_back(r);
    }

    auto cell = [](double v) {
        return v > 0 ? speedupCell(v) : std::string("Not Impl.");
    };

    std::printf("\nTable 4 — vs auto-tuning baselines\n");
    printRow({"", "vs Format-only", "vs Schedule-only"}, {10, 16, 18});
    printRow({"", "(BestFormat)", "(MKL)"}, {10, 16, 18});
    for (const auto& r : table) {
        printRow({r.alg, cell(r.vs_bestformat), cell(r.vs_mkl)},
                 {10, 16, 18});
    }

    std::printf("\nTable 5 — vs fixed implementations\n");
    printRow({"", "vs Fixed CSR/CSF", "vs ASpT"}, {10, 18, 12});
    for (const auto& r : table)
        printRow({r.alg, cell(r.vs_fixed), cell(r.vs_aspt)}, {10, 18, 12});

    std::printf("\n(Paper: Table 4 = 1.43/1.18/-/1.27x vs BestFormat and "
                "2.32/1.68x vs MKL; Table 5 = 1.54/1.26/1.29/1.35x vs "
                "FixedCSR and 1.36/1.14x vs ASpT.)\n");
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
