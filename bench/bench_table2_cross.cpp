/**
 * @file
 * Reproduces Table 2: the sparsity-pattern-dependent nature of
 * co-optimization. The format+schedule tuned for matrix X (the F.+S.
 * column of Table 1) is applied to every other motivation matrix.
 *
 * Expected shape: the diagonal dominates — each matrix runs fastest under
 * its own co-optimized configuration, and cross-applied configurations can
 * be much slower than the baseline (paper: 0.37x for opt-TSOPF on
 * sparsine).
 */
#include <cstdio>

#include "common.hpp"
#include "coopt_search.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Table 2", "SpMM speedup when applying the configuration "
                           "co-optimized for matrix X (opt-X) to others");

    RuntimeOracle oracle(MachineConfig::intel24());
    auto matrices = motivationMatrices();
    constexpr u32 kTrials = 60;

    // Co-optimize each matrix (same protocol as the Table 1 F.+S. column).
    std::vector<SuperSchedule> opt;
    for (std::size_t i = 0; i < matrices.size(); ++i) {
        auto shape = ProblemShape::forMatrix(Algorithm::SpMM,
                                             matrices[i].rows(),
                                             matrices[i].cols());
        opt.push_back(tuneInSpace(oracle, matrices[i], shape,
                                  TuneSpace::Joint, kTrials, 3)
                          .schedule);
    }

    std::vector<std::string> header = {"Name"};
    for (const auto& m : matrices)
        header.push_back("opt-" + m.name());
    printRow(header, {16, 18, 18, 18});

    u32 diagonal_wins = 0;
    for (std::size_t r = 0; r < matrices.size(); ++r) {
        auto shape = ProblemShape::forMatrix(Algorithm::SpMM,
                                             matrices[r].rows(),
                                             matrices[r].cols());
        double base =
            oracle.measure(matrices[r], shape, defaultSchedule(shape)).seconds;
        std::vector<std::string> row = {matrices[r].name()};
        double best = 0.0;
        std::size_t best_c = 0;
        for (std::size_t c = 0; c < matrices.size(); ++c) {
            // Schedules transfer across shapes (splits are clamped).
            auto meas = oracle.measure(matrices[r], shape, opt[c]);
            double speedup = meas.valid ? base / meas.seconds : 0.0;
            if (speedup > best) {
                best = speedup;
                best_c = c;
            }
            row.push_back(speedupCell(speedup));
        }
        diagonal_wins += (best_c == r);
        printRow(row, {16, 18, 18, 18});
    }
    std::printf("\nDiagonal wins: %u/%zu (paper: 3/3 — a configuration is "
                "only optimal for the pattern it was tuned for).\n",
                diagonal_wins, matrices.size());
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
