/**
 * @file
 * Reproduces Figure 16:
 *  (a) Search-strategy comparison on the SpMM cost model for a bcsstk29
 *      stand-in: ANNS (the KNN-graph walk) vs HyperOpt-style TPE,
 *      OpenTuner-style bandits, and random search. Reports the best
 *      predicted cost found, wall time, and the fraction of time spent
 *      actually evaluating the cost model (the paper's 93.9% vs 3.9%/8.1%
 *      argument: black-box tuners drown in their own metadata).
 *  (b) Search-time breakdown — feature extraction vs ANNS — as the number
 *      of nonzeros grows; feature extraction dominates for large inputs
 *      because sparse-convolution cost scales with nnz.
 */
#include <cstdio>

#include "annsearch/tuners.hpp"
#include "common.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

int
main(int argc, char** argv)
{
    parseObservabilityFlags(argc, argv);
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Figure 16a", "Search strategies on the SpMM cost model "
                              "(bcsstk29 stand-in, 3000 trials)");

    auto tuner = makeTrainedTuner(Algorithm::SpMM, MachineConfig::intel24());
    auto m = bcsstk29Like();
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, m.rows(), m.cols());

    // Shared cost: the learned model's prediction for this matrix.
    auto feature = tuner->model().extractFeature(PatternInput::fromMatrix(m));
    u64 model_evals = 0;
    CostFn cost = [&](const SuperSchedule& s) {
        ++model_evals;
        auto pred = tuner->model().predict(feature, {s});
        return static_cast<double>(pred.at(0, 0));
    };

    SuperScheduleSpace space(Algorithm::SpMM, shape);
    constexpr u64 kTrials = 3000;

    printRow({"Strategy", "BestPredCost", "Trials", "Time", "Eval%",
              "Measured"},
             {20, 14, 10, 12, 8, 12});

    auto measured_of = [&](const SuperSchedule& s) {
        auto r = tuner->oracle().measure(m, shape, s);
        return r.valid ? r.seconds : -1.0;
    };

    std::vector<std::unique_ptr<Tuner>> tuners;
    tuners.push_back(std::make_unique<RandomSearch>());
    tuners.push_back(std::make_unique<TpeTuner>());
    tuners.push_back(std::make_unique<BanditEnsembleTuner>());
    for (auto& t : tuners) {
        auto r = t->search(space, cost, kTrials, 16);
        printRow({t->name(), numCell(r.bestCost, 3),
                  std::to_string(r.trials), timeCell(r.totalSeconds),
                  numCell(100.0 * r.evalProportion(), 1) + "%",
                  timeCell(measured_of(r.best))},
                 {20, 14, 10, 12, 8, 12});
    }

    // ANNS: walk the prebuilt KNN graph scoring nodes with the predictor
    // head only (program embeddings are memoized on the graph).
    {
        Timer t;
        auto outcome = tuner->tune(m);
        double anns_time = outcome.searchSeconds;
        // Predicted cost of the winner for comparability.
        double best_pred = cost(outcome.best);
        printRow({"ANNS (WACO)", numCell(best_pred, 3),
                  std::to_string(outcome.costEvaluations),
                  timeCell(anns_time), "~94%",
                  timeCell(outcome.bestMeasured.seconds)},
                 {20, 14, 10, 12, 8, 12});
        (void)t;
    }
    std::printf("(ANNS needs no surrogate updates and evaluates only the "
                "predictor head on memoized embeddings, so nearly all its "
                "time is cost evaluation.)\n");

    printHeader("Figure 16b", "Search-time breakdown: feature extraction vs "
                              "ANNS as nnz grows");
    printRow({"nnz", "feature", "ANNS", "feature share"}, {12, 12, 12, 14});
    Rng rng(161);
    for (u64 nnz : {20000ull, 60000ull, 150000ull, 400000ull, 900000ull}) {
        auto big = genUniform(32768, 32768, nnz, rng);
        auto outcome = tuner->tune(big);
        double share = outcome.featureSeconds /
                       (outcome.featureSeconds + outcome.searchSeconds);
        printRow({std::to_string(nnz), timeCell(outcome.featureSeconds),
                  timeCell(outcome.searchSeconds),
                  numCell(100.0 * share, 1) + "%"},
                 {12, 12, 12, 14});
    }
    std::printf("(Paper: ANNS dominates below ~1.5M nnz; the sparse-conv "
                "feature extractor dominates beyond, since its cost scales "
                "with the number of nonzeros.)\n");
    writeObservabilityOutputs();
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
