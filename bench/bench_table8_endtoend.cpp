/**
 * @file
 * Reproduces Table 8: end-to-end execution time (tuning + format
 * conversion + N_runs kernel executions) for real-world usage scenarios,
 * expressed in MKL-Naive kernel invocations. The N_runs values are the
 * paper's (PageRank 50, GMRES 517K, mesh simulation 1.8M for SpMV; GNN
 * 10K, pruned NN 1M for SpMM), and the break-even points where WACO
 * overtakes MKL and BestFormat are solved from the measured costs.
 *
 * Expected shape: MKL wins at tiny N (no conversion), BestFormat at small
 * N, WACO for the repetitive workloads (GMRES, mesh sim, GNN, pruned NN).
 */
#include <cstdio>

#include "common.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

namespace {

struct Method
{
    std::string name;
    double setup;   ///< T_tuning + T_formatconvert, in naive invocations.
    double perCall; ///< T_tunedkernel / T_naive.

    double
    endToEnd(double n_runs) const
    {
        return setup + perCall * n_runs;
    }
};

void
scenarioTable(const std::string& alg_name,
              const std::vector<std::pair<std::string, double>>& scenarios,
              const std::vector<Method>& methods)
{
    std::printf("\n(%s) End-to-end time in MKL-Naive invocations:\n",
                alg_name.c_str());
    std::vector<std::string> hdr = {"Scenario", "N_runs"};
    for (const auto& m : methods)
        hdr.push_back(m.name);
    printRow(hdr, {18, 12, 12, 12, 12});
    for (const auto& [label, n] : scenarios) {
        std::vector<std::string> row = {label, numCell(n, 0)};
        double best = 1e300;
        std::size_t best_m = 0;
        for (std::size_t i = 0; i < methods.size(); ++i) {
            double v = methods[i].endToEnd(n);
            if (v < best) {
                best = v;
                best_m = i;
            }
        }
        for (std::size_t i = 0; i < methods.size(); ++i) {
            std::string cell = numCell(methods[i].endToEnd(n), 0);
            if (i == best_m)
                cell += "*";
            row.push_back(cell);
        }
        printRow(row, {18, 12, 12, 12, 12});
    }
    std::printf("  (* = winner)\n");
}

} // namespace

int
main(int argc, char** argv)
{
    parseObservabilityFlags(argc, argv);
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Table 8", "Real-world scenarios: when does each "
                           "auto-tuner win end-to-end?");

    for (Algorithm alg : {Algorithm::SpMV, Algorithm::SpMM}) {
        auto tuner = makeTrainedTuner(alg, MachineConfig::intel24());
        const RuntimeOracle& oracle = tuner->oracle();
        MklLike mkl(oracle);
        BestFormat bf(oracle);
        bf.train(alg, trainingCorpus());

        // Median-cost profile over a small test set.
        std::vector<double> mkl_setup, mkl_call, bf_setup, bf_call,
            waco_setup, waco_call;
        // 12 = 4 mid-size + 8 LLC-stressing matrices, so the profile
        // reflects inputs where tuning has headroom (as the paper's
        // SuiteSparse test set does).
        for (const auto& m : testMatrices(12, 940)) {
            double naive = mkl.naive(m, alg).measured.seconds;
            if (naive <= 0)
                continue;
            auto rm = mkl.tune(m, alg);
            mkl_setup.push_back(rm.tuningSeconds / naive);
            mkl_call.push_back(rm.measured.seconds / naive);
            auto rb = bf.tune(m);
            bf_setup.push_back((rb.tuningSeconds + rb.convertSeconds) / naive);
            bf_call.push_back(rb.measured.seconds / naive);
            auto rw = tuner->tune(m);
            waco_setup.push_back(
                (rw.tuningSeconds() + rw.convertSeconds) / naive);
            waco_call.push_back(rw.bestMeasured.seconds / naive);
        }
        std::vector<Method> methods = {
            {"WACO", median(waco_setup), median(waco_call)},
            {"BestFormat", median(bf_setup), median(bf_call)},
            {"MKL", median(mkl_setup), median(mkl_call)},
        };
        std::printf("\n%s cost profile (median): WACO setup %.0f/call %.3f; "
                    "BestFormat %.0f/%.3f; MKL %.0f/%.3f\n",
                    algorithmName(alg).c_str(), methods[0].setup,
                    methods[0].perCall, methods[1].setup, methods[1].perCall,
                    methods[2].setup, methods[2].perCall);

        if (alg == Algorithm::SpMV) {
            scenarioTable("SpMV",
                          {{"Initial Cost", 0},
                           {"PageRank", 50},
                           {"GMRES", 517000},
                           {"Mesh sim.", 1800000}},
                          methods);
        } else {
            scenarioTable("SpMM",
                          {{"Initial Cost", 0},
                           {"GNN", 10000},
                           {"Pruned NN", 1000000}},
                          methods);
        }

        // Break-even N between WACO and the others.
        for (std::size_t i = 1; i < methods.size(); ++i) {
            double dc = methods[i].perCall - methods[0].perCall;
            if (dc > 1e-12) {
                double n = (methods[0].setup - methods[i].setup) / dc;
                std::printf("  WACO = %s at N_runs ~ %.0f\n",
                            methods[i].name.c_str(), std::max(0.0, n));
            }
        }
    }
    std::printf("\n(Paper: MKL wins the 0-run case, BestFormat small N, "
                "WACO from ~1.5K runs on SpMV / ~115 on SpMM upward.)\n");
    writeObservabilityOutputs();
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
