/**
 * @file
 * Reproduces Table 1: SpMM speedup over the CSR-default baseline when
 * auto-tuning is restricted to the format (F.), the schedule (S.), or both
 * (F.+S.), on the three motivation matrices of Figure 2.
 *
 * Expected shape: F.+S. >= max(F., S.) on every matrix, with at least one
 * matrix where co-optimization is decisively better than either restricted
 * space (the paper's TSOPF row: 2.02x vs ~1.1x).
 */
#include <cstdio>

#include "common.hpp"
#include "coopt_search.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Table 1", "SpMM speedup after auto-tuning on restricted "
                           "tuning spaces (F. / S. / F.+S.)");

    RuntimeOracle oracle(MachineConfig::intel24());
    constexpr u32 kTrials = 40;

    printRow({"Name", "Base", "F.", "S.", "F.+S."}, {16, 8, 8, 8, 8});
    for (const auto& m : motivationMatrices()) {
        auto shape = ProblemShape::forMatrix(Algorithm::SpMM, m.rows(),
                                             m.cols());
        double base =
            oracle.measure(m, shape, defaultSchedule(shape)).seconds;
        auto fr = tuneInSpace(oracle, m, shape, TuneSpace::FormatOnly,
                              kTrials, 1);
        auto sr = tuneInSpace(oracle, m, shape, TuneSpace::ScheduleOnly,
                              kTrials, 2);
        // Joint tuning warm-starts from both restricted winners, exactly
        // as a co-optimizer subsumes the two smaller spaces.
        auto fsr = tuneInSpace(oracle, m, shape, TuneSpace::Joint, kTrials,
                               3, {fr.schedule, sr.schedule});
        double f = fr.measured.seconds;
        double s = sr.measured.seconds;
        double fs = fsr.measured.seconds;
        printRow({m.name(), "1x", speedupCell(base / f), speedupCell(base / s),
                  speedupCell(base / fs)},
                 {16, 8, 8, 8, 8});
    }
    std::printf("\n(F.+S. should dominate both restricted spaces; paper "
                "reports 1.21x/2.02x/2.5x on pli/TSOPF/sparsine.)\n");
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
