/**
 * @file
 * Reproduces Table 6: attribution of WACO's speedups. For every test
 * matrix where WACO beats Fixed CSR by more than 1.5x, the winning
 * SuperSchedule is classified into the paper's factor categories:
 *
 *   - OpenMP chunk size (load balancing only; format stays CSR-like)
 *   - Dense block, >50% filled (blocked format, low padding)
 *   - Dense block, <50% filled (blocked format chosen *despite* padding —
 *     the SIMD-cliff exploitation of Figure 14)
 *   - Sparse block (inner Compressed level under a column split = cache
 *     tiling, the sparsine effect)
 *   - Parallelize over column (SDDMM only)
 */
#include <cstdio>
#include <map>

#include "common.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

namespace {

std::string
classifyWin(Algorithm alg, const SuperSchedule& s, const Measurement& m,
            u64 nnz)
{
    const auto& info = algorithmInfo(alg);
    // Column-parallel wins (SDDMM): the parallelized index is A's second dim.
    u32 col_idx = info.indexOfSparseDim(1);
    if (slotIndex(s.parallelSlot) == col_idx)
        return "Parallelize over Column";

    // Blocked formats: any active inner sparse level stored Uncompressed.
    auto order = activeSparseLevelOrder(s);
    auto fmts = activeSparseLevelFormats(s);
    bool dense_block = false, sparse_block = false;
    for (std::size_t l = 0; l < order.size(); ++l) {
        if (!slotIsInner(order[l]))
            continue;
        if (fmts[l] == LevelFormat::Uncompressed)
            dense_block = true;
        else if (l > 0 && fmts[l] == LevelFormat::Compressed &&
                 fmts[0] == LevelFormat::Uncompressed)
            sparse_block = true;
    }
    if (dense_block) {
        double fill = static_cast<double>(nnz) /
                      static_cast<double>(std::max<u64>(1, m.storedValues));
        return fill >= 0.5 ? "Dense Block >50% Filled"
                           : "Dense Block <50% Filled";
    }
    if (sparse_block)
        return "Sparse Block";
    return "OpenMP Chunk Size";
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Table 6", "Attribution of WACO speedups >1.5x over Fixed "
                           "CSR (factor percentages)");

    const std::vector<std::string> kFactors = {
        "OpenMP Chunk Size", "Dense Block >50% Filled",
        "Dense Block <50% Filled", "Sparse Block", "Parallelize over Column"};

    std::map<std::string, std::map<std::string, u32>> counts;
    std::map<std::string, u32> totals;

    for (Algorithm alg : {Algorithm::SpMV, Algorithm::SpMM,
                          Algorithm::SDDMM}) {
        auto tuner = makeTrainedTuner(alg, MachineConfig::intel24());
        auto tests = testMatrices(30);
        // Include the motivation stand-ins to guarantee large-win samples.
        tests.push_back(tsopfLike());
        tests.push_back(sparsineLike());
        for (const auto& m : tests) {
            auto outcome = tuner->tune(m);
            auto fixed = fixedCsr(tuner->oracle(), m, alg);
            if (!outcome.bestMeasured.valid || !fixed.measured.valid)
                continue;
            double speedup =
                fixed.measured.seconds / outcome.bestMeasured.seconds;
            if (speedup <= 1.5)
                continue;
            std::string factor = classifyWin(alg, outcome.best,
                                             outcome.bestMeasured, m.nnz());
            ++counts[algorithmName(alg)][factor];
            ++totals[algorithmName(alg)];
        }
    }

    printRow({"Factor", "SpMV", "SpMM", "SDDMM"}, {28, 8, 8, 8});
    for (const auto& f : kFactors) {
        std::vector<std::string> row = {f};
        for (const std::string alg : {"SpMV", "SpMM", "SDDMM"}) {
            u32 t = totals.count(alg) ? totals[alg] : 0;
            u32 c = counts.count(alg) && counts[alg].count(f)
                ? counts[alg][f] : 0;
            row.push_back(t ? numCell(100.0 * c / t, 0) + "%" : "-");
        }
        printRow(row, {28, 8, 8, 8});
    }
    std::printf("\nMatrices with >1.5x wins: SpMV=%u SpMM=%u SDDMM=%u\n",
                totals["SpMV"], totals["SpMM"], totals["SDDMM"]);
    std::printf("(Paper: chunk size dominates (47-66%%), dense blocks "
                "second, sparse blocks SpMM-only, column-parallel "
                "SDDMM-only.)\n");
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
