/**
 * @file
 * Ablation (DESIGN.md §5): does SuperSchedule's one-split-per-index
 * dimension earn its keep? We co-optimize the motivation matrices with
 * (a) the full template and (b) a split-free template (all splits pinned
 * to 1, which removes blocked formats and loop tiling from the space).
 *
 * Expected: the split-free space loses exactly where Tables 1/6 attribute
 * wins to blocked formats and cache tiling.
 */
#include <cstdio>

#include "analysis/schedule_verifier.hpp"
#include "common.hpp"
#include "coopt_search.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

namespace {

/** Joint tuning restricted to split-free schedules. */
CooptResult
tuneNoSplit(const RuntimeOracle& oracle, const SparseMatrix& m,
            const ProblemShape& shape, u32 trials, u64 seed)
{
    Rng rng(seed);
    SuperScheduleSpace space(shape.alg, shape);
    CooptResult best;
    best.schedule = defaultSchedule(shape);
    best.measured = oracle.measure(m, shape, best.schedule);
    auto strip = [&](SuperSchedule s) {
        s.splits = {1, 1, 1, 1};
        analysis::verifySchedule(s, shape).throwIfErrors("tuneNoSplit");
        return s;
    };
    for (u32 t = 0; t < trials; ++t) {
        auto cand = strip(t < trials / 2
                              ? space.sample(rng)
                              : space.mutate(best.schedule, rng));
        auto r = oracle.measure(m, shape, cand);
        if (r.valid && r.seconds < best.measured.seconds) {
            best.schedule = cand;
            best.measured = r;
        }
    }
    return best;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Ablation: splits", "Co-optimization with vs without the "
                                    "SuperSchedule split dimension (SpMM)");

    RuntimeOracle oracle(MachineConfig::intel24());
    constexpr u32 kTrials = 40;
    printRow({"Name", "no-split", "with-split", "split gain"},
             {16, 12, 12, 12});
    for (const auto& m : motivationMatrices()) {
        auto shape = ProblemShape::forMatrix(Algorithm::SpMM, m.rows(),
                                             m.cols());
        double base =
            oracle.measure(m, shape, defaultSchedule(shape)).seconds;
        double ns = tuneNoSplit(oracle, m, shape, kTrials, 11)
                        .measured.seconds;
        double ws = tuneInSpace(oracle, m, shape, TuneSpace::Joint, kTrials,
                                12).measured.seconds;
        printRow({m.name(), speedupCell(base / ns), speedupCell(base / ws),
                  speedupCell(ns / ws)},
                 {16, 12, 12, 12});
    }
    std::printf("\n(Expected: splits matter on the blocked/scattered "
                "matrices — they enable BCSR-style formats and cache "
                "tiling — and are neutral where CSR was already fine.)\n");
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
