/**
 * @file
 * Ablation (DESIGN.md §5): the cost-directed KNN-graph walk (ANNS) vs
 * exhaustively scoring every graph node with the predictor head vs picking
 * random nodes. Measures result quality (measured runtime of the winner
 * after top-k re-measurement) and the number of predictor evaluations —
 * ANNS should match exhaustive quality while touching a fraction of the
 * nodes, which is the entire point of Section 4.2.
 */
#include <cstdio>

#include "common.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace waco;
using namespace waco::bench;

int
main()
{
    setLogLevel(LogLevel::Warn);
    Timer total;
    printHeader("Ablation: search", "ANNS graph walk vs exhaustive scoring "
                                    "vs random retrieval (SpMM)");

    auto tuner = makeTrainedTuner(Algorithm::SpMM, MachineConfig::intel24());
    const auto& nodes = tuner->graphSchedules();
    const RuntimeOracle& oracle = tuner->oracle();

    std::vector<double> anns_q, exh_q, rand_q;
    u64 anns_evals = 0;
    Rng rng(3001);
    auto tests = testMatrices(12, 3002);
    for (const auto& m : tests) {
        auto shape = ProblemShape::forMatrix(Algorithm::SpMM, m.rows(),
                                             m.cols());
        auto measure_best = [&](const std::vector<const SuperSchedule*>& top) {
            double best = std::numeric_limits<double>::infinity();
            for (const auto* s : top) {
                auto r = oracle.measure(m, shape, *s);
                if (r.valid)
                    best = std::min(best, r.seconds);
            }
            return best;
        };

        // ANNS (the production path).
        auto outcome = tuner->tune(m);
        anns_evals += outcome.costEvaluations;
        anns_q.push_back(outcome.bestMeasured.seconds);

        // Exhaustive: score every node, take top-10.
        auto feature =
            tuner->model().extractFeature(PatternInput::fromMatrix(m));
        auto pred = tuner->model().predict(feature, nodes);
        std::vector<u32> order(nodes.size());
        for (u32 i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
            return pred.at(a, 0) < pred.at(b, 0);
        });
        std::vector<const SuperSchedule*> top;
        for (u32 i = 0; i < std::min<u32>(10, static_cast<u32>(order.size()));
             ++i)
            top.push_back(&nodes[order[i]]);
        exh_q.push_back(measure_best(top));

        // Random 10 nodes.
        std::vector<const SuperSchedule*> rnd;
        for (int i = 0; i < 10; ++i)
            rnd.push_back(&nodes[rng.index(nodes.size())]);
        rand_q.push_back(measure_best(rnd));
    }

    // Quality relative to exhaustive scoring (1.0 = identical).
    std::vector<double> anns_rel, rand_rel;
    for (std::size_t i = 0; i < anns_q.size(); ++i) {
        anns_rel.push_back(anns_q[i] / exh_q[i]);
        rand_rel.push_back(rand_q[i] / exh_q[i]);
    }
    printRow({"Strategy", "evals/query", "runtime vs exhaustive"},
             {22, 14, 22});
    printRow({"Exhaustive head", std::to_string(nodes.size()), "1.00x"},
             {22, 14, 22});
    printRow({"ANNS (WACO)",
              std::to_string(anns_evals / tests.size()),
              speedupCell(geomean(anns_rel))},
             {22, 14, 22});
    printRow({"Random 10", "10", speedupCell(geomean(rand_rel))},
             {22, 14, 22});
    std::printf("\n(Expected: ANNS ~1.0x of exhaustive quality with far "
                "fewer evaluations; random retrieval is clearly worse.)\n");
    std::printf("[bench completed in %.1fs]\n", total.seconds());
    return 0;
}
