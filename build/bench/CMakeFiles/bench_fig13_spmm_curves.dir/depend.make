# Empty dependencies file for bench_fig13_spmm_curves.
# This may be replaced when dependencies are built.
