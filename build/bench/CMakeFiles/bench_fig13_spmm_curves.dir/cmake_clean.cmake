file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_spmm_curves.dir/bench_fig13_spmm_curves.cpp.o"
  "CMakeFiles/bench_fig13_spmm_curves.dir/bench_fig13_spmm_curves.cpp.o.d"
  "CMakeFiles/bench_fig13_spmm_curves.dir/common.cpp.o"
  "CMakeFiles/bench_fig13_spmm_curves.dir/common.cpp.o.d"
  "bench_fig13_spmm_curves"
  "bench_fig13_spmm_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_spmm_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
