file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_coopt.dir/bench_table1_coopt.cpp.o"
  "CMakeFiles/bench_table1_coopt.dir/bench_table1_coopt.cpp.o.d"
  "CMakeFiles/bench_table1_coopt.dir/common.cpp.o"
  "CMakeFiles/bench_table1_coopt.dir/common.cpp.o.d"
  "bench_table1_coopt"
  "bench_table1_coopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_coopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
