file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_endtoend.dir/bench_table8_endtoend.cpp.o"
  "CMakeFiles/bench_table8_endtoend.dir/bench_table8_endtoend.cpp.o.d"
  "CMakeFiles/bench_table8_endtoend.dir/common.cpp.o"
  "CMakeFiles/bench_table8_endtoend.dir/common.cpp.o.d"
  "bench_table8_endtoend"
  "bench_table8_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
