# Empty dependencies file for bench_table8_endtoend.
# This may be replaced when dependencies are built.
