# Empty dependencies file for bench_kernels_wallclock.
# This may be replaced when dependencies are built.
