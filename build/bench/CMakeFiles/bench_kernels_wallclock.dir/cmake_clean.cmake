file(REMOVE_RECURSE
  "CMakeFiles/bench_kernels_wallclock.dir/bench_kernels_wallclock.cpp.o"
  "CMakeFiles/bench_kernels_wallclock.dir/bench_kernels_wallclock.cpp.o.d"
  "CMakeFiles/bench_kernels_wallclock.dir/common.cpp.o"
  "CMakeFiles/bench_kernels_wallclock.dir/common.cpp.o.d"
  "bench_kernels_wallclock"
  "bench_kernels_wallclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernels_wallclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
