file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_simd_cliff.dir/bench_fig14_simd_cliff.cpp.o"
  "CMakeFiles/bench_fig14_simd_cliff.dir/bench_fig14_simd_cliff.cpp.o.d"
  "CMakeFiles/bench_fig14_simd_cliff.dir/common.cpp.o"
  "CMakeFiles/bench_fig14_simd_cliff.dir/common.cpp.o.d"
  "bench_fig14_simd_cliff"
  "bench_fig14_simd_cliff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_simd_cliff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
