# Empty compiler generated dependencies file for bench_fig14_simd_cliff.
# This may be replaced when dependencies are built.
