file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_5_geomean.dir/bench_table4_5_geomean.cpp.o"
  "CMakeFiles/bench_table4_5_geomean.dir/bench_table4_5_geomean.cpp.o.d"
  "CMakeFiles/bench_table4_5_geomean.dir/common.cpp.o"
  "CMakeFiles/bench_table4_5_geomean.dir/common.cpp.o.d"
  "bench_table4_5_geomean"
  "bench_table4_5_geomean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_5_geomean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
