file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_search.dir/bench_fig16_search.cpp.o"
  "CMakeFiles/bench_fig16_search.dir/bench_fig16_search.cpp.o.d"
  "CMakeFiles/bench_fig16_search.dir/common.cpp.o"
  "CMakeFiles/bench_fig16_search.dir/common.cpp.o.d"
  "bench_fig16_search"
  "bench_fig16_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
