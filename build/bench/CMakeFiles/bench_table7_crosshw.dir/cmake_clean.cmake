file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_crosshw.dir/bench_table7_crosshw.cpp.o"
  "CMakeFiles/bench_table7_crosshw.dir/bench_table7_crosshw.cpp.o.d"
  "CMakeFiles/bench_table7_crosshw.dir/common.cpp.o"
  "CMakeFiles/bench_table7_crosshw.dir/common.cpp.o.d"
  "bench_table7_crosshw"
  "bench_table7_crosshw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_crosshw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
