file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_extractors.dir/bench_fig15_extractors.cpp.o"
  "CMakeFiles/bench_fig15_extractors.dir/bench_fig15_extractors.cpp.o.d"
  "CMakeFiles/bench_fig15_extractors.dir/common.cpp.o"
  "CMakeFiles/bench_fig15_extractors.dir/common.cpp.o.d"
  "bench_fig15_extractors"
  "bench_fig15_extractors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_extractors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
