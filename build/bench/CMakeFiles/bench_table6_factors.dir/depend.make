# Empty dependencies file for bench_table6_factors.
# This may be replaced when dependencies are built.
