file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_factors.dir/bench_table6_factors.cpp.o"
  "CMakeFiles/bench_table6_factors.dir/bench_table6_factors.cpp.o.d"
  "CMakeFiles/bench_table6_factors.dir/common.cpp.o"
  "CMakeFiles/bench_table6_factors.dir/common.cpp.o.d"
  "bench_table6_factors"
  "bench_table6_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
