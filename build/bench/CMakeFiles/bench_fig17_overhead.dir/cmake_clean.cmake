file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_overhead.dir/bench_fig17_overhead.cpp.o"
  "CMakeFiles/bench_fig17_overhead.dir/bench_fig17_overhead.cpp.o.d"
  "CMakeFiles/bench_fig17_overhead.dir/common.cpp.o"
  "CMakeFiles/bench_fig17_overhead.dir/common.cpp.o.d"
  "bench_fig17_overhead"
  "bench_fig17_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
