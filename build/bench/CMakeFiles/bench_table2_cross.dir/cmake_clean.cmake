file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cross.dir/bench_table2_cross.cpp.o"
  "CMakeFiles/bench_table2_cross.dir/bench_table2_cross.cpp.o.d"
  "CMakeFiles/bench_table2_cross.dir/common.cpp.o"
  "CMakeFiles/bench_table2_cross.dir/common.cpp.o.d"
  "bench_table2_cross"
  "bench_table2_cross.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
