# Empty dependencies file for bench_table2_cross.
# This may be replaced when dependencies are built.
