
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/annsearch/hnsw.cpp" "src/CMakeFiles/waco.dir/annsearch/hnsw.cpp.o" "gcc" "src/CMakeFiles/waco.dir/annsearch/hnsw.cpp.o.d"
  "/root/repo/src/annsearch/tuners.cpp" "src/CMakeFiles/waco.dir/annsearch/tuners.cpp.o" "gcc" "src/CMakeFiles/waco.dir/annsearch/tuners.cpp.o.d"
  "/root/repo/src/baselines/baselines.cpp" "src/CMakeFiles/waco.dir/baselines/baselines.cpp.o" "gcc" "src/CMakeFiles/waco.dir/baselines/baselines.cpp.o.d"
  "/root/repo/src/codegen/emit.cpp" "src/CMakeFiles/waco.dir/codegen/emit.cpp.o" "gcc" "src/CMakeFiles/waco.dir/codegen/emit.cpp.o.d"
  "/root/repo/src/core/dataset.cpp" "src/CMakeFiles/waco.dir/core/dataset.cpp.o" "gcc" "src/CMakeFiles/waco.dir/core/dataset.cpp.o.d"
  "/root/repo/src/core/dataset_io.cpp" "src/CMakeFiles/waco.dir/core/dataset_io.cpp.o" "gcc" "src/CMakeFiles/waco.dir/core/dataset_io.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/waco.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/waco.dir/core/trainer.cpp.o.d"
  "/root/repo/src/core/waco_tuner.cpp" "src/CMakeFiles/waco.dir/core/waco_tuner.cpp.o" "gcc" "src/CMakeFiles/waco.dir/core/waco_tuner.cpp.o.d"
  "/root/repo/src/data/generators.cpp" "src/CMakeFiles/waco.dir/data/generators.cpp.o" "gcc" "src/CMakeFiles/waco.dir/data/generators.cpp.o.d"
  "/root/repo/src/exec/kernels.cpp" "src/CMakeFiles/waco.dir/exec/kernels.cpp.o" "gcc" "src/CMakeFiles/waco.dir/exec/kernels.cpp.o.d"
  "/root/repo/src/exec/reference.cpp" "src/CMakeFiles/waco.dir/exec/reference.cpp.o" "gcc" "src/CMakeFiles/waco.dir/exec/reference.cpp.o.d"
  "/root/repo/src/exec/scheduled.cpp" "src/CMakeFiles/waco.dir/exec/scheduled.cpp.o" "gcc" "src/CMakeFiles/waco.dir/exec/scheduled.cpp.o.d"
  "/root/repo/src/ir/algorithm.cpp" "src/CMakeFiles/waco.dir/ir/algorithm.cpp.o" "gcc" "src/CMakeFiles/waco.dir/ir/algorithm.cpp.o.d"
  "/root/repo/src/ir/schedule.cpp" "src/CMakeFiles/waco.dir/ir/schedule.cpp.o" "gcc" "src/CMakeFiles/waco.dir/ir/schedule.cpp.o.d"
  "/root/repo/src/model/feature_extractor.cpp" "src/CMakeFiles/waco.dir/model/feature_extractor.cpp.o" "gcc" "src/CMakeFiles/waco.dir/model/feature_extractor.cpp.o.d"
  "/root/repo/src/model/program_embedder.cpp" "src/CMakeFiles/waco.dir/model/program_embedder.cpp.o" "gcc" "src/CMakeFiles/waco.dir/model/program_embedder.cpp.o.d"
  "/root/repo/src/model/waco_model.cpp" "src/CMakeFiles/waco.dir/model/waco_model.cpp.o" "gcc" "src/CMakeFiles/waco.dir/model/waco_model.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/waco.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/waco.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/waco.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/waco.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/mat.cpp" "src/CMakeFiles/waco.dir/nn/mat.cpp.o" "gcc" "src/CMakeFiles/waco.dir/nn/mat.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/waco.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/waco.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/waco.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/waco.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/nn/sparse_conv.cpp" "src/CMakeFiles/waco.dir/nn/sparse_conv.cpp.o" "gcc" "src/CMakeFiles/waco.dir/nn/sparse_conv.cpp.o.d"
  "/root/repo/src/perfmodel/cost_model.cpp" "src/CMakeFiles/waco.dir/perfmodel/cost_model.cpp.o" "gcc" "src/CMakeFiles/waco.dir/perfmodel/cost_model.cpp.o.d"
  "/root/repo/src/perfmodel/machine.cpp" "src/CMakeFiles/waco.dir/perfmodel/machine.cpp.o" "gcc" "src/CMakeFiles/waco.dir/perfmodel/machine.cpp.o.d"
  "/root/repo/src/tensor/coo.cpp" "src/CMakeFiles/waco.dir/tensor/coo.cpp.o" "gcc" "src/CMakeFiles/waco.dir/tensor/coo.cpp.o.d"
  "/root/repo/src/tensor/csr.cpp" "src/CMakeFiles/waco.dir/tensor/csr.cpp.o" "gcc" "src/CMakeFiles/waco.dir/tensor/csr.cpp.o.d"
  "/root/repo/src/tensor/format.cpp" "src/CMakeFiles/waco.dir/tensor/format.cpp.o" "gcc" "src/CMakeFiles/waco.dir/tensor/format.cpp.o.d"
  "/root/repo/src/tensor/mmio.cpp" "src/CMakeFiles/waco.dir/tensor/mmio.cpp.o" "gcc" "src/CMakeFiles/waco.dir/tensor/mmio.cpp.o.d"
  "/root/repo/src/tensor/pattern_stats.cpp" "src/CMakeFiles/waco.dir/tensor/pattern_stats.cpp.o" "gcc" "src/CMakeFiles/waco.dir/tensor/pattern_stats.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/waco.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/waco.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/waco.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/waco.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
