file(REMOVE_RECURSE
  "libwaco.a"
)
