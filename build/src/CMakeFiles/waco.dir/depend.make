# Empty dependencies file for waco.
# This may be replaced when dependencies are built.
