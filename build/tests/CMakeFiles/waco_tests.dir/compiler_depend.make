# Empty compiler generated dependencies file for waco_tests.
# This may be replaced when dependencies are built.
