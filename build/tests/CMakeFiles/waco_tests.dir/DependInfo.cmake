
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_annsearch.cpp" "tests/CMakeFiles/waco_tests.dir/test_annsearch.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_annsearch.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/waco_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_codegen_and_io.cpp" "tests/CMakeFiles/waco_tests.dir/test_codegen_and_io.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_codegen_and_io.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/waco_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_embedder.cpp" "tests/CMakeFiles/waco_tests.dir/test_embedder.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_embedder.cpp.o.d"
  "/root/repo/tests/test_exec.cpp" "tests/CMakeFiles/waco_tests.dir/test_exec.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_exec.cpp.o.d"
  "/root/repo/tests/test_format.cpp" "tests/CMakeFiles/waco_tests.dir/test_format.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_format.cpp.o.d"
  "/root/repo/tests/test_mmio.cpp" "tests/CMakeFiles/waco_tests.dir/test_mmio.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_mmio.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/waco_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/waco_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_oracle_shapes.cpp" "tests/CMakeFiles/waco_tests.dir/test_oracle_shapes.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_oracle_shapes.cpp.o.d"
  "/root/repo/tests/test_pattern_stats.cpp" "tests/CMakeFiles/waco_tests.dir/test_pattern_stats.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_pattern_stats.cpp.o.d"
  "/root/repo/tests/test_perfmodel.cpp" "tests/CMakeFiles/waco_tests.dir/test_perfmodel.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_perfmodel.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/waco_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_schedule_transfer.cpp" "tests/CMakeFiles/waco_tests.dir/test_schedule_transfer.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_schedule_transfer.cpp.o.d"
  "/root/repo/tests/test_scheduled_exec.cpp" "tests/CMakeFiles/waco_tests.dir/test_scheduled_exec.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_scheduled_exec.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/waco_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/waco_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_waco_tuner.cpp" "tests/CMakeFiles/waco_tests.dir/test_waco_tuner.cpp.o" "gcc" "tests/CMakeFiles/waco_tests.dir/test_waco_tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/waco.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
