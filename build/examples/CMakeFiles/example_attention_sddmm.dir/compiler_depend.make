# Empty compiler generated dependencies file for example_attention_sddmm.
# This may be replaced when dependencies are built.
