file(REMOVE_RECURSE
  "CMakeFiles/example_attention_sddmm.dir/attention_sddmm.cpp.o"
  "CMakeFiles/example_attention_sddmm.dir/attention_sddmm.cpp.o.d"
  "example_attention_sddmm"
  "example_attention_sddmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_attention_sddmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
