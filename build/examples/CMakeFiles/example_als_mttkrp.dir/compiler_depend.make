# Empty compiler generated dependencies file for example_als_mttkrp.
# This may be replaced when dependencies are built.
