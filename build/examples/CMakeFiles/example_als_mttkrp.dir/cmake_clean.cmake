file(REMOVE_RECURSE
  "CMakeFiles/example_als_mttkrp.dir/als_mttkrp.cpp.o"
  "CMakeFiles/example_als_mttkrp.dir/als_mttkrp.cpp.o.d"
  "example_als_mttkrp"
  "example_als_mttkrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_als_mttkrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
