# Empty dependencies file for example_gnn_spmm.
# This may be replaced when dependencies are built.
