file(REMOVE_RECURSE
  "CMakeFiles/example_gnn_spmm.dir/gnn_spmm.cpp.o"
  "CMakeFiles/example_gnn_spmm.dir/gnn_spmm.cpp.o.d"
  "example_gnn_spmm"
  "example_gnn_spmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gnn_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
