file(REMOVE_RECURSE
  "CMakeFiles/example_pagerank_spmv.dir/pagerank_spmv.cpp.o"
  "CMakeFiles/example_pagerank_spmv.dir/pagerank_spmv.cpp.o.d"
  "example_pagerank_spmv"
  "example_pagerank_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pagerank_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
