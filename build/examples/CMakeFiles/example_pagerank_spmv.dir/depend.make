# Empty dependencies file for example_pagerank_spmv.
# This may be replaced when dependencies are built.
