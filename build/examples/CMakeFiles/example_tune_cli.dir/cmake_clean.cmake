file(REMOVE_RECURSE
  "CMakeFiles/example_tune_cli.dir/tune_cli.cpp.o"
  "CMakeFiles/example_tune_cli.dir/tune_cli.cpp.o.d"
  "example_tune_cli"
  "example_tune_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
