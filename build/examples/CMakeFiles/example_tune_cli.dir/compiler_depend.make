# Empty compiler generated dependencies file for example_tune_cli.
# This may be replaced when dependencies are built.
